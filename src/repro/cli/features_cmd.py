"""``likwid-features`` command-line front-end (paper §II.D).

Exit codes (shared with likwid-perfctr; see docs/robustness.md):

* 0 — success, or ``--recover`` with nothing to recover
* 1 — tool error (unknown feature, read-only feature, failed verify)
* 2 — usage error
* 5 — ``--recover`` found and undid orphaned state
* 6 — journal history corrupt; recovery refused
* 7 — run killed mid-session; state is dirty
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (EXIT_KILLED, EXIT_UNRECOVERABLE,
                              add_access_mode_argument, add_arch_argument,
                              add_journal_arguments, backend_from_args,
                              check_journal_arguments, machine_from_args,
                              run_recovery, warn_orphaned_journal)
from repro.core.features import LikwidFeatures
from repro.errors import JournalError, ProcessKilled, ReproError

EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-features",
        description="View and toggle processor features (Core 2 only).")
    parser.add_argument("-c", dest="cpu", type=int, default=0,
                        help="cpu to operate on (default 0)")
    parser.add_argument("-e", dest="enable", default=None, metavar="KEY",
                        help="enable a feature (e.g. CL_PREFETCHER)")
    parser.add_argument("-u", dest="disable", default=None, metavar="KEY",
                        help="disable a feature (e.g. CL_PREFETCHER)")
    add_arch_argument(parser, default="core2")
    add_access_mode_argument(parser)
    add_journal_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    usage = check_journal_arguments(args, "likwid-features")
    if usage is not None:
        print(usage, file=sys.stderr)
        return EXIT_USAGE
    if args.recover:
        return run_recovery(args, "likwid-features")
    machine = machine_from_args(args)
    try:
        backend = backend_from_args(machine, args)
    except JournalError as exc:
        print(f"likwid-features: cannot load journal: {exc}",
              file=sys.stderr)
        return EXIT_UNRECOVERABLE
    if (args.enable or args.disable) and \
            not backend.capabilities.feature_control:
        print(f"likwid-features: the {backend.capabilities.name!r} "
              f"access mode cannot toggle processor features (no "
              f"direct msr write path); rerun with --access-mode msr",
              file=sys.stderr)
        return 1
    warn_orphaned_journal(backend.driver, "likwid-features")
    try:
        features = LikwidFeatures(backend.driver, cpu=args.cpu)
        if args.enable:
            state = features.enable(args.enable)
            print(f"{state.key}: {state.display}")
        elif args.disable:
            state = features.disable(args.disable)
            print(f"{state.key}: {state.display}")
        else:
            print(features.report())
    except ProcessKilled as exc:
        print(f"likwid-features: {exc}", file=sys.stderr)
        if args.journal:
            print(f"likwid-features: run `likwid-features --recover "
                  f"--journal {args.journal} --arch {args.arch}` to "
                  f"restore pristine msr state", file=sys.stderr)
        return EXIT_KILLED
    except ReproError as exc:
        print(f"likwid-features: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
