"""``likwid-features`` command-line front-end (paper §II.D)."""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_arch_argument, machine_from_args
from repro.core.features import LikwidFeatures
from repro.errors import ReproError
from repro.oskern.msr_driver import MsrDriver


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="likwid-features",
        description="View and toggle processor features (Core 2 only).")
    parser.add_argument("-c", dest="cpu", type=int, default=0,
                        help="cpu to operate on (default 0)")
    parser.add_argument("-e", dest="enable", default=None, metavar="KEY",
                        help="enable a feature (e.g. CL_PREFETCHER)")
    parser.add_argument("-u", dest="disable", default=None, metavar="KEY",
                        help="disable a feature (e.g. CL_PREFETCHER)")
    add_arch_argument(parser, default="core2")
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    machine = machine_from_args(args)
    try:
        features = LikwidFeatures(MsrDriver(machine), cpu=args.cpu)
        if args.enable:
            state = features.enable(args.enable)
            print(f"{state.key}: {state.display}")
        elif args.disable:
            state = features.disable(args.disable)
            print(f"{state.key}: {state.display}")
        else:
            print(features.report())
    except ReproError as exc:
        print(f"likwid-features: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
