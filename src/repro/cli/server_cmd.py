"""``likwid-server`` command-line front-end (the tenth tool).

Three subcommands::

    likwid-server serve --nodes 4 --arch westmere_ep --port 7710
    likwid-server submit --server 127.0.0.1:7710 --node node000 \\
                  -c 0,1 -g FLOPS_DP --windows 2
    likwid-server load-test --sessions 1000 --clients 200 --nodes 8 \\
                  --tenants 4 --msr-faults read_fault_rate=0.1 \\
                  --chaos refuse=0.05,drop_reply=0.05,duplicate=0.1 \\
                  --kill-server-after 300 --verify

``serve`` hosts a fleet of simulated nodes behind the JSON-lines TCP
protocol; ``submit`` runs one measurement session against a live
server and prints its terminal document; ``load-test`` boots the
whole stack in-process and drives it with hundreds of concurrent
clients, reporting throughput, queue-wait percentiles, fairness and
exact terminal-state accounting (see docs/likwid-server.md) — while
optionally injecting seeded network chaos (``--chaos``, syntax in
docs/robustness.md) and a mid-run server SIGKILL + WAL recovery
(``--kill-server-after``).  ``serve --wal PATH`` makes a long-running
server crash-safe the same way.

Exit codes:

* 0 — success (``--verify`` reconciled, when given)
* 1 — tool error, or ``--verify`` found a violation
* 2 — usage error
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli.common import (add_arch_argument, add_msr_faults_argument,
                              add_profile_arguments, faults_from_args,
                              profiled)
from repro.errors import ReproError

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

TOOL = "likwid-server"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=TOOL,
        description="Serve concurrent measurement sessions over a "
                    "fleet of simulated nodes, or load-test the "
                    "scheduler.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="host a fleet behind the JSON-lines TCP protocol")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=7710,
                       help="bind port; 0 picks a free one "
                            "(default: %(default)s)")
    serve.add_argument("--nodes", type=int, default=4,
                       help="fleet size (default: %(default)s)")
    serve.add_argument("--lease-limit", dest="lease_limit", type=float,
                       default=1.0,
                       help="virtual seconds a granted lease may hold "
                            "its sockets before preemption "
                            "(default: %(default)s)")
    serve.add_argument("--max-queue", dest="max_queue", type=int,
                       default=64,
                       help="per-node wait-queue bound; excess "
                            "submissions are rejected "
                            "(default: %(default)s)")
    serve.add_argument("--seed", type=int, default=0,
                       help="base seed for per-node fault derivation "
                            "(default: %(default)s)")
    serve.add_argument("--wal", metavar="PATH", default=None,
                       help="write-ahead log path; admitted sessions "
                            "survive a server crash and are recovered "
                            "(fenced/requeued) on the next start")
    add_arch_argument(serve)
    add_msr_faults_argument(serve)
    add_profile_arguments(serve)

    submit = sub.add_parser(
        "submit", help="run one session against a live server")
    submit.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="server endpoint to connect to")
    submit.add_argument("--node", required=True,
                        help="node name to measure on (see ping)")
    submit.add_argument("-c", dest="cpus", default="0",
                        help="cpu list to measure (e.g. 0,1)")
    submit.add_argument("-g", dest="group", default="FLOPS_DP",
                        help="metric group (default: %(default)s)")
    submit.add_argument("--tenant", default="default",
                        help="fairness accounting identity "
                             "(default: %(default)s)")
    submit.add_argument("--windows", type=int, default=1,
                        help="measurement windows under the lease "
                             "(default: %(default)s)")
    submit.add_argument("--window", type=float, default=0.1,
                        help="virtual seconds per window "
                             "(default: %(default)s)")
    submit.add_argument("--deadline", type=float, default=None,
                        help="max virtual seconds to wait queued "
                             "before timing out (default: none)")
    submit.add_argument("--seed", type=int, default=0,
                        help="workload seed (default: %(default)s)")
    submit.add_argument("--json", dest="as_json", action="store_true",
                        help="print the full terminal session document")
    add_profile_arguments(submit)

    load = sub.add_parser(
        "load-test", help="boot the stack in-process and hammer it "
                          "with concurrent clients")
    load.add_argument("--sessions", type=int, default=200,
                      help="total session submissions "
                           "(default: %(default)s)")
    load.add_argument("--clients", type=int, default=50,
                      help="concurrent client connections "
                           "(default: %(default)s)")
    load.add_argument("--nodes", type=int, default=4,
                      help="fleet size (default: %(default)s)")
    load.add_argument("--tenants", type=int, default=4,
                      help="tenant population, load skewed toward "
                           "tenant 0 (default: %(default)s)")
    load.add_argument("--seed", type=int, default=0,
                      help="mix seed; same seed, same request stream "
                           "(default: %(default)s)")
    load.add_argument("--window", type=float, default=0.05,
                      help="virtual seconds per window "
                           "(default: %(default)s)")
    load.add_argument("--deadline-fraction", dest="deadline_fraction",
                      type=float, default=0.1,
                      help="fraction of sessions given a tight "
                           "deadline (default: %(default)s)")
    load.add_argument("--long-fraction", dest="long_fraction",
                      type=float, default=0.05,
                      help="fraction of sessions long enough to be "
                           "preempted (default: %(default)s)")
    load.add_argument("--lease-limit", dest="lease_limit", type=float,
                      default=1.0,
                      help="preemption threshold, virtual seconds "
                           "(default: %(default)s)")
    load.add_argument("--chaos", metavar="SPEC", default=None,
                      help="seeded network fault plan armed per client "
                           "(e.g. refuse=0.05,drop_reply=0.05,"
                           "duplicate=0.1); seeded from --seed unless "
                           "SPEC carries its own seed=")
    load.add_argument("--kill-server-after", dest="kill_server_after",
                      type=int, default=None, metavar="N",
                      help="SIGKILL the in-process server once N "
                           "sessions reached a terminal state, then "
                           "recover it from its WAL on the same port")
    load.add_argument("--verify", action="store_true",
                      help="reconcile exact terminal-state accounting "
                           "and replay completed sessions standalone "
                           "(bit-identity); any violation exits 1")
    load.add_argument("--verify-sample", dest="verify_sample",
                      type=int, default=None, metavar="N",
                      help="cap the bit-identity replay to N evenly "
                           "spaced completed sessions (default: all)")
    load.add_argument("--json", dest="as_json", action="store_true",
                      help="emit the report as JSON instead of text")
    add_arch_argument(load)
    add_msr_faults_argument(load)
    add_profile_arguments(load)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    with profiled(args, TOOL):
        try:
            return _run(args)
        except SystemExit as exc:
            code = exc.code
            if isinstance(code, int):
                return code
            if code:
                print(code, file=sys.stderr)
            return EXIT_USAGE if code else EXIT_OK


def _run(args: argparse.Namespace) -> int:
    try:
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "submit":
            return _run_submit(args)
        return _run_load_test(args)
    except ReproError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cli.common import ignore_sigpipe
    from repro.server.loadtest import LoadTestConfig, node_specs
    from repro.server.protocol import ProtocolServer, recover_protocol
    from repro.server.server import ReproServer
    from repro.server.wal import ServerWal

    ignore_sigpipe()    # a vanished client must not kill the server

    faults_from_args(args, TOOL)    # validate the spec up front
    config = LoadTestConfig(nodes=args.nodes, arch=args.arch,
                            seed=args.seed, faults=args.msr_faults,
                            lease_limit=args.lease_limit)
    specs = node_specs(config)
    wal = ServerWal(args.wal) if args.wal else None

    async def serve() -> None:
        replay = wal.replay() if wal is not None else None
        if replay is not None and not replay.empty:
            # A prior incarnation died with admitted work in the log:
            # fence/requeue it before accepting new connections.
            proto = await recover_protocol(
                specs, wal, lease_limit=args.lease_limit,
                max_queue=args.max_queue)
            print(f"{TOOL}: recovered prior incarnation from "
                  f"{args.wal}: {len(replay.terminals)} terminal, "
                  f"{len(replay.fenced)} fenced, "
                  f"{len(replay.requeue_admitted) + len(replay.requeue_intended)}"
                  f" requeued", file=sys.stderr)
        else:
            server = ReproServer.from_specs(
                specs, lease_limit=args.lease_limit,
                max_queue=args.max_queue, wal=wal)
            proto = ProtocolServer(server)
        host, port = await proto.start(args.host, args.port)
        print(f"{TOOL}: serving {len(specs)} {args.arch} node(s) on "
              f"{host}:{port} ({', '.join(s.name for s in specs)})",
              file=sys.stderr)
        try:
            await proto.serve_forever()
        finally:
            await proto.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print(f"{TOOL}: interrupted", file=sys.stderr)
    return EXIT_OK


def _run_submit(args: argparse.Namespace) -> int:
    from repro.core.affinity import parse_corelist
    from repro.server.client import SyncServerClient, parse_endpoint
    from repro.server.scheduler import SessionRequest

    host, port = parse_endpoint(args.server)
    cpus = tuple(parse_corelist(args.cpus))
    request = SessionRequest(node=args.node, cpus=cpus,
                             group=args.group, tenant=args.tenant,
                             windows=args.windows, window=args.window,
                             deadline=args.deadline, seed=args.seed)
    with SyncServerClient(host, port) as client:
        doc = client.submit(request, wait=True)
    doc.pop("ok", None)
    if args.as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        wait = doc.get("queue_wait")
        print(f"session {doc['session']} on {doc['node']}: "
              f"{doc['state']} after {doc['windows_run']} window(s), "
              f"queued {wait if wait is None else round(wait, 4)}s"
              + (f" ({doc['reason']})" if doc.get("reason") else ""))
    return EXIT_OK if doc.get("state") == "completed" else EXIT_ERROR


def _print_report(report) -> None:
    doc = report.as_dict()
    counts = doc["counts"]
    print(f"Load test: {doc['submitted']} session(s) over "
          f"{report.config.nodes} node(s), {report.config.clients} "
          f"client(s), {report.config.tenants} tenant(s) in "
          f"{doc['elapsed_s']:.2f}s "
          f"({doc['throughput_sessions_per_s']:.0f}/s)")
    print(f"{'state':<12} {'count':>8}")
    for state in ("completed", "timed_out", "rejected", "preempted",
                  "cancelled", "failed", "pending"):
        print(f"{state:<12} {counts.get(state, 0):>8}")
    qw = doc["queue_wait"]
    if qw.get("count"):
        print(f"queue wait (virtual s): p50={qw['p50']:.4g} "
              f"p90={qw['p90']:.4g} p99={qw['p99']:.4g} "
              f"max={qw['max']:.4g}")
    print(f"fairness (max/min tenant service): "
          f"{doc['fairness_max_over_min']:.2f}")
    injected = doc.get("chaos_injected") or {}
    if doc.get("retries") or doc.get("dedup_hits") \
            or doc.get("server_restarts") or injected:
        print(f"robustness: retries={doc.get('retries', 0)} "
              f"dedup_hits={doc.get('dedup_hits', 0)} "
              f"server_restarts={doc.get('server_restarts', 0)}")
    if injected:
        print("chaos injected: " + " ".join(
            f"{kind}={n}" for kind, n in sorted(injected.items())))


def _run_load_test(args: argparse.Namespace) -> int:
    from repro.cli.common import ignore_sigpipe
    from repro.server.loadtest import LoadTestConfig, run_load_test

    # Chaos aborts connections mid-write on purpose; the resulting
    # EPIPE must land on the socket, not as a process-fatal signal.
    ignore_sigpipe()
    faults_from_args(args, TOOL)    # validate the spec up front
    if args.chaos:
        from repro.server.chaos import ChaosPlan
        try:
            ChaosPlan.from_string(args.chaos)
        except ValueError as exc:
            print(f"{TOOL}: bad --chaos: {exc}", file=sys.stderr)
            return EXIT_USAGE
    if args.kill_server_after is not None and args.kill_server_after < 1:
        print(f"{TOOL}: --kill-server-after needs at least one "
              f"terminal session", file=sys.stderr)
        return EXIT_USAGE
    try:
        config = LoadTestConfig(
            sessions=args.sessions, clients=args.clients,
            nodes=args.nodes, tenants=args.tenants, seed=args.seed,
            arch=args.arch, window=args.window,
            deadline_fraction=args.deadline_fraction,
            long_fraction=args.long_fraction,
            lease_limit=args.lease_limit, faults=args.msr_faults,
            chaos=args.chaos, kill_after=args.kill_server_after)
    except ReproError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report = run_load_test(config)
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        _print_report(report)
    if args.verify:
        problems = report.verify(sample=args.verify_sample)
        if problems:
            for problem in problems:
                print(f"{TOOL}: verify violation: {problem}",
                      file=sys.stderr)
            return EXIT_ERROR
        # stderr so --json keeps stdout machine-parseable.
        print(f"{TOOL}: verified: every session accounted terminal, "
              f"completed results bit-identical to standalone replay",
              file=sys.stderr)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
