"""``likwid-agent`` command-line front-end.

The paper demonstrates system monitoring by wrapping ``sleep``; this
tool is that idiom as a real daemon loop: rotate through metric
groups, one measurement window each, publish normalized samples to
one or more sinks, never block on a slow sink (drops are counted, not
silent).  Two modes::

    likwid-agent -c 0-1 -g FLOPS_DP,MEM --rotations 5 --window 0.1
    likwid-agent --fleet 50 -g FLOPS_DP,MEM,BRANCH --rotations 20 \\
                 --msr-faults read_fault_rate=0.1 --verify

Single-node mode monitors one simulated machine (``--arch``) through
the selected access backend; fleet mode simulates a mixed-architecture
fleet feeding one aggregation pipeline and prints the rollup.

Exit codes:

* 0 — success (accounting verified when ``--verify`` was given)
* 1 — tool error, or ``--verify`` found unaccounted samples
* 2 — usage error
* 7 — run killed mid-session (``kill_after`` fault); state is dirty
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli.common import (EXIT_KILLED, add_access_mode_argument,
                              add_arch_argument, add_journal_arguments,
                              add_msr_faults_argument,
                              add_profile_arguments, backend_from_args,
                              check_journal_arguments, faults_from_args,
                              machine_from_args, profiled, run_recovery,
                              warn_orphaned_journal)
from repro.errors import JournalError, ProcessKilled, ReproError

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2

TOOL = "likwid-agent"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=TOOL,
        description="Continuously monitor metric groups and publish "
                    "normalized samples to pluggable sinks.")
    parser.add_argument("-c", dest="cpus", default="0-1",
                        help="cpu list to monitor (e.g. 0-3)")
    parser.add_argument("-g", dest="groups", default="FLOPS_DP,MEM",
                        help="comma-separated metric groups to rotate "
                             "through (default: %(default)s)")
    parser.add_argument("--window", type=float, default=0.1,
                        help="seconds of measurement per group per "
                             "rotation (default: %(default)s)")
    parser.add_argument("--rotations", type=int, default=1,
                        help="full passes through the group list "
                             "(default: %(default)s)")
    parser.add_argument("--sink", dest="sinks", action="append",
                        metavar="SPEC", default=[],
                        help="add a sink: jsonl:PATH, line:PATH or "
                             "ring:CAPACITY (repeatable; default is an "
                             "in-memory collector)")
    parser.add_argument("--sink-capacity", dest="sink_capacity",
                        type=int, default=None, metavar="N",
                        help="samples each sink absorbs per push; "
                             "excess is deterministically downsampled "
                             "(back-pressure; default unbounded)")
    parser.add_argument("--server", metavar="HOST:PORT", default=None,
                        help="also ship every batch to a running "
                             "likwid-server for central aggregation "
                             "(single-node mode)")
    parser.add_argument("--server-spill", dest="server_spill",
                        type=int, default=64, metavar="N",
                        help="batches the server sink's spill ring "
                             "holds while its circuit breaker is open; "
                             "oldest beyond N become counted drops "
                             "(default: %(default)s)")
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="simulate an N-node mixed-architecture "
                             "fleet feeding one aggregation pipeline "
                             "(--arch then only seeds the catalog)")
    parser.add_argument("--cpus-per-node", dest="cpus_per_node",
                        type=int, default=2,
                        help="monitored cpus per fleet node "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for synthetic load, fleet "
                             "derivation and downsampling "
                             "(default: %(default)s)")
    parser.add_argument("--overrun-rate", dest="overrun_rate",
                        type=float, default=0.0,
                        help="seeded fraction of windows that run long "
                             "(default: %(default)s)")
    parser.add_argument("--verify", action="store_true",
                        help="reconcile sample accounting at the end "
                             "(offered == emitted + dropped everywhere, "
                             "pipeline ingest matches lane emits); any "
                             "violation exits 1")
    parser.add_argument("--json", dest="as_json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--strict-io", action="store_true",
                        dest="strict_io",
                        help="treat degraded (NaN-producing) windows as "
                             "errors instead of publishing NaN samples")
    add_arch_argument(parser, default="nehalem_ep")
    add_access_mode_argument(parser)
    add_journal_arguments(parser)
    add_msr_faults_argument(parser)
    add_profile_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.cli.common import restore_sigpipe
    restore_sigpipe()
    args = build_parser().parse_args(argv)
    with profiled(args, TOOL):
        try:
            return _run(args)
        except SystemExit as exc:
            code = exc.code
            if isinstance(code, int):
                return code
            if code:
                print(code, file=sys.stderr)
            return EXIT_USAGE if code else EXIT_OK


def _parse_groups(spec: str) -> tuple[str, ...]:
    groups = tuple(g.strip() for g in spec.split(",") if g.strip())
    if not groups:
        print(f"{TOOL}: -g needs at least one metric group",
              file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    return groups


def _open_sinks(args: argparse.Namespace):
    """Build the sink list from ``--sink`` specs; returns the sinks
    plus the file handles to close afterwards."""
    from repro.agent import CollectorSink, JsonlSink, LineProtocolSink, \
        RingSink
    cap = args.sink_capacity
    sinks, handles = [], []
    for spec in args.sinks:
        kind, _, operand = spec.partition(":")
        if kind in ("jsonl", "line") and operand:
            stream = open(operand, "w", encoding="utf-8")
            handles.append(stream)
            cls = JsonlSink if kind == "jsonl" else LineProtocolSink
            sinks.append(cls(stream, max_batch=cap))
        elif kind == "ring" and operand:
            try:
                sinks.append(RingSink(int(operand), max_batch=cap))
            except ValueError as exc:
                print(f"{TOOL}: bad --sink {spec!r}: {exc}",
                      file=sys.stderr)
                raise SystemExit(EXIT_USAGE) from None
        else:
            print(f"{TOOL}: bad --sink {spec!r} (want jsonl:PATH, "
                  f"line:PATH or ring:CAPACITY)", file=sys.stderr)
            raise SystemExit(EXIT_USAGE)
    if not sinks:
        sinks.append(CollectorSink(max_batch=cap))
    return sinks, handles


def _print_lanes(lanes) -> None:
    print(f"{'sink':<12} {'offered':>8} {'emitted':>8} {'dropped':>8}")
    for lane in lanes:
        print(f"{lane.sink:<12} {lane.offered:>8} {lane.emitted:>8} "
              f"{lane.dropped:>8}")


def _print_rollup(rollup: dict) -> None:
    for group, metrics in rollup.get("groups", {}).items():
        print(f"Group {group}:")
        for metric, stats in metrics.items():
            print(f"  {metric:<32} n={stats['count']:<6} "
                  f"p50={stats['p50']:<12.4g} p99={stats['p99']:<12.4g}")
    sockets = rollup.get("sockets", {})
    if sockets:
        print("Socket totals:")
        for ident, metrics in sockets.items():
            for metric, total in metrics.items():
                print(f"  {ident:<18} {metric:<32} {total:.4g}")


def _verify(problems: list[str]) -> int:
    if problems:
        for problem in problems:
            print(f"{TOOL}: accounting violation: {problem}",
                  file=sys.stderr)
        return EXIT_ERROR
    # stderr so --json keeps stdout machine-parseable.
    print(f"{TOOL}: accounting verified: every offered sample is "
          f"emitted or counted dropped", file=sys.stderr)
    return EXIT_OK


def _run_single(args: argparse.Namespace) -> int:
    from repro.agent import (AgentConfig, Aggregator, AggregatorSink,
                             MonitorAgent, SyntheticLoad)
    from repro.core.affinity import parse_corelist
    from repro.core.perfctr.groups import groups_for

    machine = machine_from_args(args)
    groups = _parse_groups(args.groups)
    provided = groups_for(machine.spec)
    unknown = [g for g in groups if g not in provided]
    if unknown:
        print(f"{TOOL}: unknown group(s) for {args.arch}: "
              f"{', '.join(unknown)} (available: "
              f"{', '.join(sorted(provided))})", file=sys.stderr)
        return EXIT_USAGE
    cpus = parse_corelist(args.cpus, max_cpu=machine.num_hwthreads - 1)

    faults = faults_from_args(args, TOOL)
    try:
        backend = backend_from_args(machine, args, faults=faults)
    except JournalError as exc:
        print(f"{TOOL}: cannot load journal: {exc}", file=sys.stderr)
        return EXIT_ERROR
    warn_orphaned_journal(backend.driver, TOOL)

    try:
        config = AgentConfig(groups=groups, cpus=tuple(cpus),
                             window=args.window,
                             rotations=args.rotations,
                             seed=args.seed, strict_io=args.strict_io)
    except ReproError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_USAGE

    aggregator = Aggregator()
    sinks, handles = _open_sinks(args)
    sinks.append(AggregatorSink(aggregator))
    client = None
    server_sink = None
    if args.server:
        from repro.cli.common import ignore_sigpipe
        from repro.server.client import SyncServerClient, parse_endpoint
        from repro.server.ingest import ServerIngestSink

        # A server that dies mid-batch must trip the sink's breaker,
        # not SIGPIPE the agent to death.
        ignore_sigpipe()
        host, port = parse_endpoint(args.server)
        client = SyncServerClient(host, port)
        try:
            server_sink = ServerIngestSink(
                client, max_batch=args.sink_capacity,
                spill_capacity=args.server_spill)
        except ValueError as exc:
            print(f"{TOOL}: bad --server-spill: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            client.connect()
        except (ConnectionError, OSError) as exc:
            # Not fatal: the sink's circuit breaker owns the outage —
            # batches spill (bounded, counted) and drains retry.
            print(f"{TOOL}: warning: server {args.server} unreachable "
                  f"({exc}); batches will spill behind the breaker",
                  file=sys.stderr)
        sinks.append(server_sink)
    workload = SyntheticLoad(machine, cpus, seed=args.seed,
                             overrun_rate=args.overrun_rate)
    agent = MonitorAgent(machine, backend, config, sinks=tuple(sinks),
                         workload=workload)
    try:
        report = agent.run()
    finally:
        for handle in handles:
            handle.close()
        if client is not None:
            client.close()
    for warning in agent.warnings:
        print(f"{TOOL}: warning: {warning}", file=sys.stderr)

    rollup = aggregator.rollup()
    if args.as_json:
        doc = {"node": config.node, "windows": report.windows,
               "samples": report.samples, "batches": report.batches,
               "lanes": [lane.as_dict() for lane in report.lanes],
               "rollup": rollup}
        if server_sink is not None:
            doc["server_sink"] = {
                "offered": server_sink.offered,
                "shipped": server_sink.shipped,
                "refused": server_sink.refused,
                "dropped": server_sink.dropped,
                "pending": server_sink.pending,
                "breaker_open": server_sink.breaker_open,
                "breaker_trips": server_sink.breaker_trips,
                "retries": client.retries,
            }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"Monitored {len(cpus)} cpu(s) on {args.arch}: "
              f"{report.windows} window(s), {report.samples} sample(s)")
        _print_lanes(report.lanes)
        if server_sink is not None:
            print(f"server sink: offered={server_sink.offered} "
                  f"shipped={server_sink.shipped} "
                  f"refused={server_sink.refused} "
                  f"dropped={server_sink.dropped} "
                  f"breaker_trips={server_sink.breaker_trips} "
                  f"retries={client.retries}")
        _print_rollup(rollup)
    if args.verify:
        problems = report.inconsistencies()
        if server_sink is not None:
            problems = problems + server_sink.inconsistencies()
        return _verify(problems)
    return EXIT_OK


def _run_fleet(args: argparse.Namespace) -> int:
    from repro.agent import FleetSimulator, default_fleet

    if args.fleet < 1:
        print(f"{TOOL}: --fleet needs at least one node",
              file=sys.stderr)
        return EXIT_USAGE
    groups = _parse_groups(args.groups)
    # Validate the spec string once up front (per-node plans re-seed it).
    faults_from_args(args, TOOL)
    nodes = default_fleet(args.fleet, seed=args.seed,
                          faults=args.msr_faults,
                          ingest_capacity=args.sink_capacity,
                          overrun_rate=args.overrun_rate)
    try:
        sim = FleetSimulator(nodes, groups,
                             cpus_per_node=args.cpus_per_node,
                             window=args.window,
                             rotations=args.rotations)
        report = sim.run()
    except (ValueError, ReproError) as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.as_json:
        doc = {"fleet": args.fleet,
               "emitted": report.total_emitted,
               "dropped": report.total_dropped,
               "rollup": report.rollup}
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"Fleet of {args.fleet} node(s): "
              f"{report.rollup['total_samples']} sample(s) ingested, "
              f"{report.total_dropped} dropped by back-pressure")
        _print_rollup(report.rollup)
    if args.verify:
        return _verify(report.inconsistencies())
    return EXIT_OK


def _run(args: argparse.Namespace) -> int:
    usage = check_journal_arguments(args, TOOL)
    if usage is not None:
        print(usage, file=sys.stderr)
        return EXIT_USAGE
    if args.recover:
        return run_recovery(args, TOOL)
    try:
        if args.fleet is not None:
            return _run_fleet(args)
        return _run_single(args)
    except ProcessKilled as exc:
        print(f"{TOOL}: killed mid-run: {exc}", file=sys.stderr)
        return EXIT_KILLED
    except ReproError as exc:
        print(f"{TOOL}: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
