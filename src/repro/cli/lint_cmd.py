"""``repro-lint`` command-line front-end.

The one tool in the suite with no real-LIKWID counterpart: a static
verification pass over the whole perfctr configuration surface.
Without touching a simulated machine or MSR driver it checks event
tables, register layouts, builtin and file-backed performance groups,
metric formulas and thread placements, and reports findings with
stable ``LKxxx`` codes (catalog: ``docs/linting.md``)::

    repro-lint --all --strict            # whole matrix, CI gate
    repro-lint --arch nehalem_ep         # one architecture
    repro-lint --arch nehalem_ep -g MEM  # one group
    repro-lint -g EVT:PMC0,EVT:PMC0      # an explicit event string
    repro-lint -c 0-3 -g MEM -t intel    # a thread placement
    repro-lint --changed                 # only files touched vs origin/main
    repro-lint --all --fail-unused       # also fail on stale suppressions

Exit status: 0 clean, 1 findings (errors; with ``--strict`` also
warnings), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import add_arch_argument, restore_sigpipe


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically verify the perfctr configuration surface.")
    parser.add_argument("--all", action="store_true",
                        help="lint every architecture in the catalog")
    parser.add_argument("-g", dest="group", default=None,
                        help="limit to one group (name or EVENT:COUNTER list)")
    parser.add_argument("-c", dest="cpus", default=None,
                        help="lint a thread placement (core list or "
                             "affinity-domain expression)")
    parser.add_argument("-t", dest="thread_type", default=None,
                        help="thread type for -c (gnu, intel, intel_mpi, ...)")
    parser.add_argument("-s", dest="skip", default=None,
                        help="explicit skip mask for -c (e.g. 0x3)")
    parser.add_argument("--changed", nargs="?", const="origin/main",
                        default=None, metavar="REF",
                        help="lint only files touched vs REF (default "
                             "origin/main) plus untracked files; exit "
                             "semantics match a full run on that subset")
    parser.add_argument("--json", action="store_true",
                        help="emit the versioned JSON report")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as findings (exit 1)")
    parser.add_argument("--pedantic", action="store_true",
                        help="show NOTE-level diagnostics in the text report")
    parser.add_argument("--fail-unused", action="store_true",
                        help="exit 1 if any `# lk: disable` suppression "
                             "matched no finding (LK609)")
    add_arch_argument(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    restore_sigpipe()
    args = build_parser().parse_args(argv)

    from repro.analysis import report, runner
    from repro.analysis.diagnostics import counts
    from repro.errors import AffinityError, GroupError
    from repro.hw.arch import get_arch

    def resolve_group(spec):
        from repro.core.perfctr.groups import lookup_group
        return lookup_group(spec, args.group)

    try:
        if args.changed is not None:
            diags = runner.lint_changed(args.changed)
        elif args.all:
            diags = runner.lint_all()
        else:
            spec = get_arch(args.arch)
            if args.cpus is not None:
                group = None
                if args.group:
                    group = resolve_group(spec)
                skip = None
                if args.skip is not None:
                    from repro.core.affinity import parse_skip_mask
                    skip = parse_skip_mask(args.skip)
                diags = runner.lint_affinity(
                    spec, args.cpus, skip_mask=skip,
                    thread_type=args.thread_type, group=group)
            elif args.group:
                from repro.core.perfctr.events import is_event_string
                if is_event_string(args.group):
                    diags = runner.lint_event_string(spec, args.group)
                else:
                    group = resolve_group(spec)
                    diags = runner.lint_group(spec, group,
                                              locus=f"group:{group.name}")
            else:
                diags = runner.lint_spec(spec)
    except (GroupError, AffinityError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        sys.stdout.write(report.render_json(diags))
    else:
        sys.stdout.write(report.render_text(diags, pedantic=args.pedantic))
    summary = counts(diags)
    if summary["errors"] or (args.strict and summary["warnings"]):
        return 1
    if args.fail_unused and any(d.code == "LK609" for d in diags):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
