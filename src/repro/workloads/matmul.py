"""Blocked dense matrix multiply: the compute-bound counterpart.

STREAM and Jacobi are bandwidth-starved; DGEMM is the classic
compute-bound workload, and the block size slides it along the
roofline: a b x b tile held in L1 amortises each loaded element over b
fused multiply-adds, so arithmetic traffic per FMA is ~16/b bytes.
Small blocks are memory-bound; large blocks hit the SSE issue limit —
the FLOPS_DP group then shows the machine's peak, which is how
likwid-perfctr users sanity-check a kernel against the roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.machine import SimMachine
from repro.hw.spec import ArchSpec
from repro.model.ecm import KernelPhase, RunResult
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import ThreadKind
from repro.oskern.openmp import Team
from repro.workloads.runner import run_team

DOUBLE = 8
# SSE2 peak: one packed-double multiply + one add per cycle = 4 flops.
SSE_FLOPS_PER_CYCLE = 4.0


@dataclass(frozen=True)
class MatmulConfig:
    """C = A x B with cubic dimension n, square blocking b."""

    n: int
    block: int
    nthreads: int
    compiler: str = "icc"

    def __post_init__(self) -> None:
        if self.block < 1 or self.block > self.n:
            raise WorkloadError(
                f"block {self.block} outside 1..{self.n}")
        if self.compiler not in ("icc", "gcc"):
            raise WorkloadError(f"unknown compiler {self.compiler!r}")

    @property
    def fmas(self) -> int:
        return self.n ** 3

    @property
    def flops(self) -> int:
        return 2 * self.fmas


def matmul_phase(spec: ArchSpec, config: MatmulConfig) -> KernelPhase:
    """Per-thread descriptor for one blocked DGEMM."""
    iters = config.fmas // config.nthreads  # iterations are FMAs
    b = config.block
    # Tiles of A and B stream through the cache once per block pass:
    # each element is reused b times, so DRAM traffic ~ 16/b bytes/FMA
    # (plus the C tile, negligible for b >= 2).
    mem_bytes = 16.0 / b + 8.0 / max(b * b, 1)
    l1_resident = 3 * b * b * DOUBLE <= spec.data_caches()[0].size
    vectorised = config.compiler == "icc"
    cycles = (2.0 / SSE_FLOPS_PER_CYCLE if vectorised else 2.0)
    if not l1_resident:
        cycles *= 1.3   # tile spills L1: extra load ports pressure
    return KernelPhase(
        name=f"dgemm_b{b}_{config.compiler}",
        iters=iters,
        flops_per_iter=2.0,
        packed_fraction=1.0 if vectorised else 0.0,
        instr_per_iter=1.5 if vectorised else 4.0,
        cycles_per_iter=cycles,
        loads_per_iter=2.0 / (2 if vectorised else 1),
        stores_per_iter=1.0 / max(b, 1),
        l2_bytes_per_iter=mem_bytes * 2,
        l3_bytes_per_iter=mem_bytes * 1.5,
        mem_read_bytes_per_iter=mem_bytes,
        mem_write_bytes_per_iter=8.0 / max(b * b, 1),
    )


@dataclass
class MatmulResult:
    gflops: float
    config: MatmulConfig
    result: RunResult


def run_matmul(machine: SimMachine, kernel: OSKernel, config: MatmulConfig,
               *, pin_cpus: list[int] | None = None) -> MatmulResult:
    """Run one DGEMM on pthreads, optionally pinned."""
    kernel.reset_threads()
    kernel.clear_create_hooks()
    master = kernel.spawn_process("dgemm")
    threads = [master] + [
        kernel.pthread_create(ThreadKind.WORKER, f"dgemm-{i}")
        for i in range(1, config.nthreads)]
    if pin_cpus is not None:
        if len(pin_cpus) < config.nthreads:
            raise WorkloadError("pin list shorter than thread count")
        for thread, cpu in zip(threads, pin_cpus):
            kernel.sched_setaffinity(thread.tid, {cpu})
    team = Team(master=master, created=threads[1:])
    phase = matmul_phase(machine.spec, config)
    result = run_team(machine, kernel, team, lambda _i, _n: phase,
                      migrate=False)
    gflops = (config.flops / result.total_time / 1e9
              if result.total_time > 0 else 0.0)
    return MatmulResult(gflops, config, result)


def peak_gflops(spec: ArchSpec, nthreads: int) -> float:
    """SSE double-precision peak of the thread group."""
    return nthreads * spec.clock_hz * SSE_FLOPS_PER_CYCLE / 1e9
