"""The OpenMP STREAM triad benchmark (paper case study 1, Figs 4-10).

``a[i] = b[i] + s * c[i]`` over large arrays.  The paper benchmarks two
compilers whose generated code differs in exactly the ways that matter
for the pinning study:

* **icc** (-O3 -xSSE4.2): packed SSE, streaming (nontemporal) stores —
  24 bytes of physical traffic per element, high per-thread memory
  concurrency.
* **gcc 4.3** (-O3): scalar code without nontemporal stores — the
  store misses write-allocate, so 32 bytes of physical traffic per
  element while STREAM still *reports* 24, and lower per-thread
  concurrency.  This is why gcc's saturated bandwidth is ~25% below
  icc's and why gcc profits more from SMT oversubscription (paper's
  discussion of Figs 7/8).

STREAM reports bandwidth as 24 bytes x N / time regardless of what the
hardware actually moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.machine import SimMachine
from repro.hw.spec import ArchSpec
from repro.model.ecm import KernelPhase, RunResult
from repro.oskern.openmp import OpenMPRuntime
from repro.oskern.preload import ENV_CPULIST, ENV_SKIP, PinOverlay
from repro.oskern.scheduler import OSKernel
from repro.workloads.runner import run_team

REPORTED_BYTES_PER_ELEMENT = 24  # 3 x 8-byte doubles: the STREAM convention

COMPILERS = ("icc", "gcc")


@dataclass(frozen=True)
class StreamKernel:
    """One of the four STREAM kernels."""

    name: str
    read_arrays: int
    write_arrays: int
    flops_per_element: float

    @property
    def reported_bytes(self) -> float:
        """STREAM's bandwidth convention: reads + writes, no allocate."""
        return 8.0 * (self.read_arrays + self.write_arrays)


STREAM_KERNELS: dict[str, StreamKernel] = {
    "copy": StreamKernel("copy", 1, 1, 0.0),     # c[i] = a[i]
    "scale": StreamKernel("scale", 1, 1, 1.0),   # b[i] = s*c[i]
    "add": StreamKernel("add", 2, 1, 1.0),       # c[i] = a[i]+b[i]
    "triad": StreamKernel("triad", 2, 1, 2.0),   # a[i] = b[i]+s*c[i]
}


def stream_phase(kernel: str, compiler: str, iters: int) -> KernelPhase:
    """Per-thread descriptor for one sweep of any STREAM kernel.

    The compiler model decides vectorisation, nontemporal stores, and
    achievable memory concurrency — the code-generation difference
    behind the icc/gcc gap of Figs 4-8.
    """
    try:
        k = STREAM_KERNELS[kernel]
    except KeyError:
        raise WorkloadError(
            f"unknown STREAM kernel {kernel!r}; known: "
            f"{', '.join(STREAM_KERNELS)}") from None
    reads = 8.0 * k.read_arrays
    writes = 8.0 * k.write_arrays
    if compiler == "icc":
        return KernelPhase(
            name=f"stream_{kernel}_icc",
            iters=iters,
            flops_per_iter=k.flops_per_element,
            packed_fraction=1.0,          # fully vectorised
            instr_per_iter=0.6 * (k.read_arrays + k.write_arrays) + 0.55,
            cycles_per_iter=0.25 * (k.read_arrays + k.write_arrays + 1),
            loads_per_iter=float(k.read_arrays),
            stores_per_iter=float(k.write_arrays),
            nt_store_fraction=1.0,        # streaming stores
            l2_bytes_per_iter=reads + writes,
            l3_bytes_per_iter=reads + writes,
            mem_read_bytes_per_iter=reads,
            mem_write_bytes_per_iter=writes,
            mem_concurrency=1.0,
        )
    if compiler == "gcc":
        return KernelPhase(
            name=f"stream_{kernel}_gcc",
            iters=iters,
            flops_per_iter=k.flops_per_element,
            packed_fraction=0.0,          # scalar SSE
            instr_per_iter=1.6 * (k.read_arrays + k.write_arrays) + 0.2,
            cycles_per_iter=0.65 * (k.read_arrays + k.write_arrays) + 0.05,
            loads_per_iter=float(k.read_arrays),
            stores_per_iter=float(k.write_arrays),
            nt_store_fraction=0.0,        # write-allocate on store misses
            l2_bytes_per_iter=reads + 2 * writes,
            l3_bytes_per_iter=reads + 2 * writes,
            mem_read_bytes_per_iter=reads + writes,  # + write-allocate
            mem_write_bytes_per_iter=writes,
            mem_concurrency=0.75,
        )
    raise WorkloadError(f"unknown compiler model {compiler!r}")


def triad_phase(compiler: str, iters: int) -> KernelPhase:
    """The per-thread kernel descriptor for one triad sweep."""
    return stream_phase("triad", compiler, iters)


@dataclass
class StreamResult:
    """One STREAM triad run."""

    bandwidth_mb_s: float      # reported, STREAM convention
    nthreads: int
    result: RunResult


def run_stream(machine: SimMachine, kernel: OSKernel, *,
               nthreads: int, compiler: str = "icc",
               stream_kernel: str = "triad",
               openmp_model: str | None = None,
               pin_cpus: list[int] | None = None,
               skip_mask: int | None = None,
               n_elements: int = 20_000_000,
               migrate: bool = True) -> StreamResult:
    """Run one OpenMP STREAM triad measurement.

    *pin_cpus* reproduces ``likwid-pin -c <list>``: the overlay library
    is preloaded with the list (and a skip mask; ``None`` selects the
    per-runtime default — 0x1 for Intel's shepherd thread, 0x0 for gcc,
    exactly likwid-pin's ``-t`` presets).
    """
    if compiler not in COMPILERS:
        raise WorkloadError(f"unknown compiler {compiler!r}")
    if openmp_model is None:
        openmp_model = "intel" if compiler == "icc" else "gnu"

    kernel.reset_threads()
    kernel.clear_create_hooks()
    if pin_cpus is not None:
        if skip_mask is None:
            skip_mask = 0x1 if openmp_model == "intel" else 0x0
        kernel.env[ENV_CPULIST] = ",".join(map(str, pin_cpus))
        kernel.env[ENV_SKIP] = hex(skip_mask)
        overlay = PinOverlay().install(kernel)
    else:
        kernel.env.pop(ENV_CPULIST, None)
        kernel.env.pop(ENV_SKIP, None)
        overlay = None

    runtime = OpenMPRuntime(kernel, openmp_model)
    master = kernel.spawn_process("stream")
    if overlay is not None:
        overlay.pin_master(kernel, master)
    team = runtime.spawn_team(nthreads, master=master)

    per_thread = n_elements // nthreads
    result = run_team(
        machine, kernel, team,
        lambda _i, _n: stream_phase(stream_kernel, compiler, per_thread),
        migrate=migrate and pin_cpus is None)
    total_elements = per_thread * nthreads
    reported = STREAM_KERNELS[stream_kernel].reported_bytes
    bandwidth = (reported * total_elements
                 / result.total_time / 1e6 if result.total_time > 0 else 0.0)
    return StreamResult(bandwidth, nthreads, result)


def run_full_stream(machine: SimMachine, kernel: OSKernel, *,
                    nthreads: int, compiler: str = "icc",
                    pin_cpus: list[int] | None = None,
                    n_elements: int = 20_000_000) -> dict[str, float]:
    """Run all four STREAM kernels; returns name -> bandwidth MB/s."""
    return {name: run_stream(machine, kernel, nthreads=nthreads,
                             compiler=compiler, stream_kernel=name,
                             pin_cpus=pin_cpus,
                             n_elements=n_elements).bandwidth_mb_s
            for name in STREAM_KERNELS}


def scatter_pin_list(spec: ArchSpec, nthreads: int) -> list[int]:
    """The pin list the paper uses for Figs 5/8/10: threads equally
    distributed over sockets, physical cores before SMT threads."""
    order = spec.scatter_order()
    return order[:nthreads]


def stream_samples(machine: SimMachine, *, nthreads: int, compiler: str,
                   pinned: bool, samples: int = 100, seed: int = 12345,
                   kmp_affinity: str | None = None,
                   n_elements: int = 20_000_000) -> list[float]:
    """Repeat a STREAM measurement (the paper's 100 samples per thread
    count), each with a fresh scheduler RNG state."""
    bandwidths: list[float] = []
    for sample in range(samples):
        kernel = OSKernel(machine, seed=seed + sample * 7919)
        if kmp_affinity is not None:
            kernel.env["KMP_AFFINITY"] = kmp_affinity
        pin = (scatter_pin_list(machine.spec, nthreads) if pinned else None)
        run = run_stream(machine, kernel, nthreads=nthreads,
                         compiler=compiler, pin_cpus=pin,
                         n_elements=n_elements)
        bandwidths.append(run.bandwidth_mb_s)
    return bandwidths
