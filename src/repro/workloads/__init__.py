"""Workloads: STREAM triad, 3D Jacobi, and exact trace kernels."""

from repro.workloads.jacobi import JacobiConfig, JacobiResult, run_jacobi
from repro.workloads.matmul import MatmulConfig, MatmulResult, run_matmul
from repro.workloads.runner import run_team, run_trace
from repro.workloads.stream import StreamResult, run_stream, stream_samples
from repro.workloads.trace_cache import (TRACE_KERNELS, clear_trace_cache,
                                         trace_arrays, trace_cache_info)

__all__ = ["JacobiConfig", "JacobiResult", "run_jacobi",
           "MatmulConfig", "MatmulResult", "run_matmul", "run_team",
           "run_trace", "StreamResult", "run_stream", "stream_samples",
           "TRACE_KERNELS", "trace_arrays", "trace_cache_info",
           "clear_trace_cache"]
