"""3D 7-point Jacobi smoother (paper case studies 2 and 3).

Three variants, matching the paper's Table II and Figure 11:

* ``threaded`` — straightforward domain-decomposed threading with
  temporal stores: every store misses, write-allocates, and is later
  written back (24 B + layer-condition excess per update).
* ``threaded_nt`` — the same with nontemporal stores, eliminating the
  write-allocate read (the paper: "nontemporal stores save about 1/3
  of the data transfer volume").  This is the "threaded" reference
  curve of Fig. 11 (its caption: "with nontemporal stores").
* ``wavefront`` — the temporally blocked pipeline-parallel kernel of
  paper reference [8]: a group of threads shares a socket's L3, each
  handling one time-step of a moving wavefront, so grid data travels
  to memory only once per *depth* sweeps.  Splitting the group across
  sockets destroys the shared-cache reuse — the Fig. 11 "hazardous"
  pinning case.

Traffic model (per lattice-site update, line-granular):

* The source-array read is 8 B when the *layer condition* (three
  adjacent planes resident in the thread's L3 share) holds, and
  ``8 * LAYER_EXCESS`` when it fails — calibrated to Table II, where
  the measured read volume per update is ~11.2 B at N = 480.
* The wavefront reuse depth is bounded by how many pipeline stages fit
  in the shared L3 and by the implementation maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.machine import SimMachine
from repro.hw.spec import ArchSpec
from repro.model.ecm import KernelPhase, RunResult
from repro.oskern.openmp import Team
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import ThreadKind
from repro.workloads.runner import run_team

VARIANTS = ("threaded", "threaded_nt", "wavefront")

DOUBLE = 8                 # sizeof(double)
LAYER_EXCESS = 1.4         # source-read inflation when the layer condition fails
WAVEFRONT_MAX_DEPTH = 8.0  # implementation bound on in-cache time steps
FLOPS_PER_UPDATE = 8.0     # 6 adds + 1 mul + 1 scale


@dataclass(frozen=True)
class JacobiConfig:
    """One Jacobi experiment: variant, cubic grid size, sweeps, threads.

    *groups* partitions the threads into independent wavefront teams
    (the "GxT" layouts of paper reference [8]): ``nthreads=4,
    groups=2`` is two 1x2 pipelines, each owning half the domain —
    pinned to different sockets they use both memory controllers and
    both L3s.
    """

    variant: str
    n: int                   # linear grid size (cubic domain)
    sweeps: int              # time steps
    nthreads: int
    groups: int = 1

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise WorkloadError(f"unknown Jacobi variant {self.variant!r}")
        if self.n < 8:
            raise WorkloadError(f"grid size {self.n} too small")
        if self.groups < 1 or self.nthreads % self.groups:
            raise WorkloadError(
                f"{self.nthreads} threads do not split into "
                f"{self.groups} equal groups")

    @property
    def threads_per_group(self) -> int:
        return self.nthreads // self.groups

    @property
    def updates(self) -> int:
        return self.n ** 3 * self.sweeps


def layer_condition_factor(spec: ArchSpec, n: int, nthreads: int) -> float:
    """1.0 when three N x N planes fit in the thread's L3 share."""
    llc = spec.last_level_cache()
    share = llc.size / max(nthreads, 1)
    return 1.0 if 3 * n * n * DOUBLE <= share else LAYER_EXCESS


def wavefront_depth(spec: ArchSpec, n: int) -> float:
    """Temporal reuse depth of the wavefront pipeline: how many time
    steps of a grid point execute per trip of its plane through the
    shared L3 — the cache holds ``depth`` pipeline stages of ~3 planes
    each, bounded by the implementation's maximum pipeline length."""
    llc = spec.last_level_cache()
    depth = llc.size / max(n * n * DOUBLE, 1)
    return max(1.5, min(WAVEFRONT_MAX_DEPTH, depth))


def in_cache(spec: ArchSpec, n: int) -> bool:
    """True when both grids fit in one socket's last-level cache."""
    return 2 * n ** 3 * DOUBLE <= spec.last_level_cache().size


def jacobi_phase(spec: ArchSpec, config: JacobiConfig, *,
                 split_groups: bool = False) -> KernelPhase:
    """Per-thread kernel descriptor for one Jacobi run.

    *split_groups* marks a wavefront group whose threads do NOT share
    an L3 (the mis-pinned Fig. 11 case): the pipeline stages exchange
    through memory, so the reuse depth collapses to 1.
    """
    n, nthreads = config.n, config.nthreads
    iters = config.updates // nthreads
    # Cache shares and stream concurrency are per wavefront group: two
    # groups on two sockets each see a full L3 and memory controller.
    f = layer_condition_factor(spec, n, config.threads_per_group)
    # Short inner loops cost extra per-iteration overhead (pipeline
    # startup, remainder loops) — relevant only at small N.
    small_n_overhead = 1.0 + 64.0 / n

    read = DOUBLE * f          # source stream with layer-condition excess
    if in_cache(spec, n):
        # Cache-resident: only compulsory traffic, amortised to ~zero.
        read = 0.0

    if config.variant == "threaded":
        mem_read = read + (DOUBLE if read else 0.0)  # + write-allocate
        mem_write = DOUBLE if read else 0.0
        return KernelPhase(
            name="jacobi_threaded", iters=iters,
            flops_per_iter=FLOPS_PER_UPDATE, packed_fraction=1.0,
            instr_per_iter=10.0, cycles_per_iter=4.5 * small_n_overhead,
            loads_per_iter=7.0, stores_per_iter=1.0,
            l2_bytes_per_iter=24.0 + read, l3_bytes_per_iter=24.0 + read,
            mem_read_bytes_per_iter=mem_read,
            mem_write_bytes_per_iter=mem_write,
            l3_fill_bytes_per_iter=mem_read,
            l3_victim_bytes_per_iter=mem_read,
        )
    if config.variant == "threaded_nt":
        mem_write = DOUBLE if read else 0.0
        return KernelPhase(
            name="jacobi_threaded_nt", iters=iters,
            flops_per_iter=FLOPS_PER_UPDATE, packed_fraction=1.0,
            instr_per_iter=10.0, cycles_per_iter=4.5 * small_n_overhead,
            loads_per_iter=7.0, stores_per_iter=1.0, nt_store_fraction=1.0,
            l2_bytes_per_iter=16.0 + read, l3_bytes_per_iter=16.0 + read,
            mem_read_bytes_per_iter=read,
            mem_write_bytes_per_iter=mem_write,
            l3_fill_bytes_per_iter=read,
            l3_victim_bytes_per_iter=read,
            bw_efficiency=0.93,   # streaming stores drive the bus less well
        )
    # wavefront
    depth = 1.0 if split_groups else wavefront_depth(spec, n)
    mem_read = (read + DOUBLE) / depth if read else 0.0
    mem_write = DOUBLE / depth if read else 0.0
    # The whole group drains through the leading thread's access
    # stream: collectively one stream's worth of memory concurrency.
    group_concurrency = (0.88 / config.threads_per_group
                         if not split_groups else 0.6)
    return KernelPhase(
        name="jacobi_wavefront", iters=iters,
        flops_per_iter=FLOPS_PER_UPDATE, packed_fraction=1.0,
        instr_per_iter=12.0,
        cycles_per_iter=5.4 * (1.0 + 24.0 / n),
        loads_per_iter=8.0, stores_per_iter=1.0,
        l2_bytes_per_iter=40.0, l3_bytes_per_iter=40.0,
        mem_read_bytes_per_iter=mem_read,
        mem_write_bytes_per_iter=mem_write,
        l3_fill_bytes_per_iter=mem_read,
        l3_victim_bytes_per_iter=mem_read,
        mem_concurrency=group_concurrency,
    )


@dataclass
class JacobiResult:
    mlups: float
    config: JacobiConfig
    result: RunResult


def run_jacobi(machine: SimMachine, kernel: OSKernel, config: JacobiConfig,
               *, pin_cpus: list[int] | None = None,
               migrate: bool = False) -> JacobiResult:
    """Run one Jacobi experiment on POSIX threads (the paper's code is
    pthreads-based), optionally pinned to an explicit CPU list."""
    kernel.reset_threads()
    kernel.clear_create_hooks()
    master = kernel.spawn_process("jacobi")
    threads = [master]
    for i in range(1, config.nthreads):
        threads.append(kernel.pthread_create(ThreadKind.WORKER, f"jacobi-{i}"))
    if pin_cpus is not None:
        if len(pin_cpus) < config.nthreads:
            raise WorkloadError("pin list shorter than thread count")
        for thread, cpu in zip(threads, pin_cpus):
            kernel.sched_setaffinity(thread.tid, {cpu})

    split = False
    if config.variant == "wavefront" and pin_cpus is not None:
        # Each group must share one socket's L3; a group spanning
        # sockets loses the shared-cache reuse.
        tpg = config.threads_per_group
        for g in range(config.groups):
            chunk = pin_cpus[g * tpg:(g + 1) * tpg]
            if len({machine.spec.socket_of(c) for c in chunk}) > 1:
                split = True

    team = Team(master=master, created=threads[1:])
    phase = jacobi_phase(machine.spec, config, split_groups=split)
    result = run_team(machine, kernel, team, lambda _i, _n: phase,
                      migrate=migrate)
    mlups = (config.updates / result.total_time / 1e6
             if result.total_time > 0 else 0.0)
    return JacobiResult(mlups, config, result)
