"""Content-addressed cache of captured trace arrays.

All trace kernels in :mod:`repro.workloads.kernels` are pure
functions of their parameters, so the tuple ``(kernel name, sorted
parameters, line size)`` *is* a content address for the trace they
generate.  Sweeps that revisit the same working-set point (the
fig. 4–10 style parameter scans, the bandwidth ladder, the ablation
benchmarks, prefetcher on/off A-B runs) therefore pay trace
generation once and replay the captured :class:`~repro.hw.batch.TraceArrays`
from memory afterwards.

The cache is bounded (LRU over whole traces) because captured arrays
are ~17 bytes per access; `trace_cache_info()` exposes hit/miss/byte
counters so benchmarks can assert reuse actually happens.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable

import repro.workloads.kernels as kernels
from repro import trace as _trace
from repro.hw.batch import TraceArrays, encode_trace

#: Kernel generators addressable by name.  Every entry is
#: deterministic in its keyword parameters — the precondition for
#: content-addressing the captured trace.
TRACE_KERNELS: dict[str, Callable[..., Iterable[tuple[str, int, int]]]] = {
    "streaming_load": kernels.streaming_load,
    "streaming_store": kernels.streaming_store,
    "streaming_triad": kernels.streaming_triad,
    "strided_load": kernels.strided_load,
    "random_load": kernels.random_load,
    "pointer_chase": kernels.pointer_chase,
    "blocked_sum": kernels.blocked_sum,
    "copy_kernel": kernels.copy_kernel,
    "loop_branches": kernels.loop_branches,
    "random_branches": kernels.random_branches,
    "alternating_branches": kernels.alternating_branches,
}

_MAX_TRACES = 64

_cache: OrderedDict[tuple, TraceArrays] = OrderedDict()
_hits = 0
_misses = 0


@dataclass(frozen=True)
class TraceCacheInfo:
    hits: int
    misses: int
    traces: int
    bytes: int


def trace_arrays(kernel: str, *args, **params) -> TraceArrays:
    """Return the captured trace for ``kernel(*args, **params)``,
    generating and caching it on first use.

    The cache key covers the kernel name, every positional and keyword
    parameter, and the line size constant the generators are written
    against — the full content address of the resulting arrays.
    """
    global _hits, _misses
    try:
        generator = TRACE_KERNELS[kernel]
    except KeyError:
        raise KeyError(
            f"unknown trace kernel {kernel!r}; known: "
            f"{', '.join(sorted(TRACE_KERNELS))}") from None
    key = (kernel, args, tuple(sorted(params.items())), kernels.LINE)
    tracer = _trace.TRACER
    cached = _cache.get(key)
    if cached is not None:
        _hits += 1
        if tracer.enabled:
            tracer.metrics.incr("batch.cache.hits")
        _cache.move_to_end(key)
        return cached
    _misses += 1
    if tracer.enabled:
        tracer.metrics.incr("batch.cache.misses")
    with tracer.span("batch.cache.generate", kernel=kernel):
        arrays = encode_trace(generator(*args, **params))
    _cache[key] = arrays
    while len(_cache) > _MAX_TRACES:
        _cache.popitem(last=False)
    return arrays


def trace_cache_info() -> TraceCacheInfo:
    return TraceCacheInfo(hits=_hits, misses=_misses, traces=len(_cache),
                          bytes=sum(t.nbytes for t in _cache.values()))


def clear_trace_cache() -> None:
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
