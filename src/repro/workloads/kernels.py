"""Trace-kernel generators for the exact (cache-simulator) substrate.

Each generator yields ``(op, address, stream_id)`` tuples consumed by
:func:`repro.workloads.runner.run_trace`.  These small kernels exercise
the cache hierarchy and prefetchers precisely — they back the CACHE /
L2CACHE group tests, the prefetcher case study, and the ablation
benchmark that validates the analytic model against exact simulation.
"""

from __future__ import annotations

from collections.abc import Iterator

Trace = Iterator[tuple[str, int, int]]

LINE = 64
DOUBLE = 8


def streaming_load(n: int, *, base: int = 0, stream: int = 0) -> Trace:
    """Sequential 8-byte loads over n elements (perfectly prefetchable)."""
    for i in range(n):
        yield ("L", base + i * DOUBLE, stream)


def streaming_triad(n: int, *, nontemporal: bool = False) -> Trace:
    """STREAM triad access pattern: a[i] = b[i] + s*c[i].

    Arrays are spaced far apart so they map to disjoint address ranges;
    each array is its own prefetch stream, as distinct load/store
    instructions would be on hardware.
    """
    spacing = 1 << 30
    for i in range(n):
        yield ("L", spacing * 1 + i * DOUBLE, 1)   # b[i]
        yield ("L", spacing * 2 + i * DOUBLE, 2)   # c[i]
        yield ("N" if nontemporal else "S", spacing * 3 + i * DOUBLE, 3)  # a[i]


def streaming_store(n: int, *, base: int = 0, stream: int = 0,
                    nontemporal: bool = False) -> Trace:
    """Sequential 8-byte stores over n elements (write-allocate unless
    nontemporal — the likwid-bench 'store' / 'store_nt' pattern)."""
    op = "N" if nontemporal else "S"
    for i in range(n):
        yield (op, base + i * DOUBLE, stream)


def strided_load(n: int, stride_bytes: int, *, base: int = 0,
                 stream: int = 0) -> Trace:
    """Constant-stride loads — the IP prefetcher's target pattern."""
    for i in range(n):
        yield ("L", base + i * stride_bytes, stream)


def random_load(n: int, footprint_bytes: int, *, seed: int = 1234,
                stream: int = 0) -> Trace:
    """Uniform random loads inside a footprint (prefetcher-hostile)."""
    state = seed & 0x7FFFFFFF
    lines = max(footprint_bytes // LINE, 1)
    for _ in range(n):
        # xorshift31 — deterministic and dependency-free.
        state ^= (state << 13) & 0x7FFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0x7FFFFFFF
        yield ("L", (state % lines) * LINE, stream)


def pointer_chase(n: int, footprint_bytes: int, *, stream: int = 0) -> Trace:
    """Latency-bound dependent loads over a line-per-element ring with a
    large prime stride, defeating stream and stride detectors with a
    non-repeating short-term pattern."""
    lines = max(footprint_bytes // LINE, 3)
    step = _coprime_step(lines)
    idx = 0
    for _ in range(n):
        yield ("L", idx * LINE, stream)
        idx = (idx + step) % lines


def _coprime_step(lines: int) -> int:
    step = lines // 2 + 1
    while _gcd(step, lines) != 1:
        step += 1
    return step


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def blocked_sum(n: int, block_bytes: int, repeats: int, *,
                stream: int = 0) -> Trace:
    """Cache-blocked reduction: sweep one block repeatedly before
    moving on (the temporal-blocking access idiom, in miniature)."""
    per_block = max(block_bytes // DOUBLE, 1)
    blocks = max(n // per_block, 1)
    for b in range(blocks):
        base = b * block_bytes
        for _ in range(repeats):
            for i in range(per_block):
                yield ("L", base + i * DOUBLE, stream)


def loop_branches(iterations: int, body_branches: int = 0, *,
                  pc: int = 0x400000) -> Trace:
    """The branch stream of a counted loop: the backward branch is
    taken ``iterations - 1`` times then falls through; optional
    always-taken body branches model calls/ifs inside the loop."""
    for i in range(iterations):
        for b in range(body_branches):
            yield ("B", pc + 16 + 4 * b, 1)
        yield ("B", pc, 1 if i < iterations - 1 else 0)


def random_branches(n: int, *, taken_permille: int = 500,
                    seed: int = 77, pc: int = 0x500000) -> Trace:
    """Data-dependent branches: taken with the given probability,
    uncorrelated — the predictor-hostile pattern."""
    state = seed & 0x7FFFFFFF
    for _ in range(n):
        state ^= (state << 13) & 0x7FFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0x7FFFFFFF
        yield ("B", pc, 1 if (state % 1000) < taken_permille else 0)


def alternating_branches(n: int, *, pc: int = 0x600000) -> Trace:
    """Strictly alternating outcome: defeats a bimodal predictor but
    is trivially captured by global history (gshare)."""
    for i in range(n):
        yield ("B", pc, i & 1)


def copy_kernel(n: int, *, nontemporal: bool = False) -> Trace:
    """c[i] = a[i]: one load stream and one store stream."""
    spacing = 1 << 30
    for i in range(n):
        yield ("L", i * DOUBLE, 1)
        yield ("N" if nontemporal else "S", spacing + i * DOUBLE, 2)
