"""Workload execution: binds OpenMP teams to the machine model.

``run_team`` is the bridge between the OS layer and the performance
model: it places the team's threads (honouring whatever affinity
likwid-pin or KMP_AFFINITY installed), optionally lets the scheduler
migrate unpinned threads away from their first-touch memory, solves
the contention model, and feeds the resulting event channels into the
machine's PMUs — so a likwid-perfctr measurement wrapped around the
run observes it exactly as on hardware.

``run_trace`` is the exact counterpart for small kernels: it executes
an access trace through the set-associative cache hierarchy.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro import trace as _trace
from repro.hw.cache import CacheHierarchy
from repro.hw.events import Channel
from repro.hw.machine import SimMachine
from repro.hw.prefetch import PrefetcherConfig
from repro.model.ecm import KernelPhase, PlacedWork, RunResult, solve
from repro.oskern.openmp import Team
from repro.oskern.scheduler import OSKernel

# phase_for(thread_index, num_compute_threads) -> KernelPhase
PhaseFactory = Callable[[int, int], KernelPhase]


def run_team(machine: SimMachine, kernel: OSKernel, team: Team,
             phase_for: PhaseFactory, *, migrate: bool = True,
             apply_counts: bool = True) -> RunResult:
    """Execute one parallel phase on an OpenMP team."""
    with _trace.span("runner.run_team",
                     threads=len(team.compute_threads)):
        kernel.place_all()
        compute = team.compute_threads
        if migrate:
            kernel.maybe_migrate([t.tid for t in compute])
        work: list[PlacedWork] = []
        for index, thread in enumerate(compute):
            if thread.hwthread is None:
                kernel.place_thread(thread.tid)
            assert thread.memory_socket is not None
            work.append(PlacedWork(
                tid=thread.tid,
                hwthread=thread.hwthread,
                memory_socket=thread.memory_socket,
                phase=phase_for(index, len(compute)),
            ))
        result = solve(machine.spec, work)
        if apply_counts:
            apply_result(machine, result)
        return result


def apply_result(machine: SimMachine, result: RunResult) -> None:
    """Feed a solved run into the PMUs (merging threads per hwthread —
    the PMU counts everything on the core, whoever ran it)."""
    core_counts: dict[int, dict[Channel, float]] = {}
    for outcome in result.threads:
        merged = core_counts.setdefault(outcome.hwthread, {})
        for channel, value in outcome.channels.items():
            merged[channel] = merged.get(channel, 0.0) + value
    uncore = result.socket_channels if machine.uncore_pmus else None
    machine.apply_counts(core_counts, uncore, elapsed_seconds=result.total_time)


def run_trace(machine: SimMachine, hwthread: int,
              trace: Iterable[tuple[str, int, int]], *,
              flops_per_load: float = 1.0,
              apply_counts: bool = True,
              engine: str = "batched") -> dict[Channel, float]:
    """Execute an access trace exactly through the cache simulator.

    *trace* yields ``(op, address, stream_id)`` with op ``'L'`` (load),
    ``'S'`` (store), ``'N'`` (nontemporal store) or ``'B'`` (branch at
    program counter *address*, whose third field is the taken outcome,
    run through the core's branch predictor).  A pre-captured
    :class:`~repro.hw.batch.TraceArrays` is accepted as well and is
    the fast way to replay a trace repeatedly.  The prefetcher
    configuration is read from the machine's IA32_MISC_ENABLE for the
    given hardware thread, so likwid-features toggles are observable.

    *engine* selects the execution substrate: ``"batched"`` (default)
    replays the whole trace through
    :class:`~repro.hw.batch.BatchHierarchy` in one call; ``"scalar"``
    feeds one access at a time through
    :class:`~repro.hw.cache.CacheHierarchy`.  Both produce identical
    counts (the differential tests enforce it); scalar remains the
    readable reference implementation.
    """
    with _trace.span("runner.run_trace", engine=engine,
                     hwthread=hwthread):
        return _run_trace(machine, hwthread, trace,
                          flops_per_load=flops_per_load,
                          apply_counts=apply_counts, engine=engine)


def _run_trace(machine: SimMachine, hwthread: int,
               trace: Iterable[tuple[str, int, int]], *,
               flops_per_load: float, apply_counts: bool,
               engine: str) -> dict[Channel, float]:
    from repro.hw.branch import BranchUnit
    config = PrefetcherConfig.from_machine(machine, hwthread)
    branch_unit = BranchUnit()
    if engine == "batched":
        from repro.hw.batch import BatchHierarchy, encode_trace
        hierarchy = BatchHierarchy(list(machine.spec.caches), config,
                                   tlb_entries=machine.spec.dtlb_entries,
                                   page_size=machine.spec.page_size)
        cycles = hierarchy.replay(encode_trace(trace), branch_unit)
    elif engine == "scalar":
        hierarchy = CacheHierarchy(list(machine.spec.caches), config,
                                   tlb_entries=machine.spec.dtlb_entries,
                                   page_size=machine.spec.page_size)
        cycles = 0.0
        for op, addr, stream in trace:
            if op == "L":
                level = hierarchy.load(addr, stream=stream)
            elif op == "S":
                level = hierarchy.store(addr, stream=stream)
            elif op == "N":
                level = hierarchy.store(addr, stream=stream,
                                        nontemporal=True)
            elif op == "B":
                # A mispredicted branch costs a pipeline flush (~15 cycles).
                cycles += 15.0 if branch_unit.execute(addr, bool(stream)) \
                    else 1.0
                continue
            else:
                raise ValueError(f"unknown trace op {op!r}")
            # Rough latency model per service level: L1 hit 1 cycle, then
            # increasingly expensive — only used for CPI-flavoured metrics.
            cycles += (1.0, 8.0, 30.0, 200.0)[min(level, 3)]
    else:
        raise ValueError(f"unknown trace engine {engine!r}; "
                         "choose 'batched' or 'scalar'")
    channels = hierarchy.channels()
    ops = (hierarchy.loads + hierarchy.stores + hierarchy.nt_stores
           + branch_unit.stats.branches)
    channels[Channel.INSTRUCTIONS] = ops * 2.0
    channels[Channel.CORE_CYCLES] = cycles
    channels[Channel.REF_CYCLES] = cycles
    channels[Channel.FLOPS_SCALAR_DP] = hierarchy.loads * flops_per_load
    channels[Channel.BRANCHES] = float(branch_unit.stats.branches)
    channels[Channel.BRANCH_MISSES] = float(
        branch_unit.stats.mispredictions)
    if apply_counts:
        machine.apply_counts({hwthread: channels})
    return channels
