"""Exporters: Chrome ``trace_event`` JSON, flat text report, profile dump.

The ``--profile-json`` dump is one JSON object that is simultaneously

* a valid Chrome trace-event file — the top level carries
  ``traceEvents`` (complete ``"ph": "X"`` events, microsecond
  timestamps), so ``about:tracing`` and Perfetto load it directly
  (both ignore the extra keys), and
* a machine-readable profile — ``meta`` identifies the producing tool
  and schema version, ``metrics`` carries the registry snapshot, and
  ``spans`` the raw nanosecond records.

:data:`PROFILE_SCHEMA` describes that shape and
:func:`validate_profile` enforces it (dependency-free — the CI smoke
step runs it against real CLI output to catch exporter drift).
"""

from __future__ import annotations

import json

from repro.trace.tracer import SpanRecord, Tracer

PROFILE_VERSION = 1

#: JSON-Schema-flavoured description of the ``--profile-json`` shape.
#: ``validate_profile`` interprets the subset used here (type,
#: required, properties, items, enum); keeping the schema data-driven
#: means the validator, the docs and the CI smoke test can never
#: disagree about what the exporter promises.
PROFILE_SCHEMA: dict = {
    "type": "object",
    "required": ["meta", "traceEvents", "metrics", "spans"],
    "properties": {
        "meta": {
            "type": "object",
            "required": ["version", "tool", "generator"],
            "properties": {
                "version": {"enum": [PROFILE_VERSION]},
                "tool": {"type": "string"},
                "generator": {"type": "string"},
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ph": {"enum": ["X", "C", "M"]},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
        "metrics": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {"type": "object"},
                "gauges": {"type": "object"},
                "histograms": {"type": "object"},
            },
        },
        "spans": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["span_id", "name", "start_ns", "duration_ns",
                             "thread_id", "depth", "parent_id", "args",
                             "error"],
                "properties": {
                    "span_id": {"type": "integer"},
                    "name": {"type": "string"},
                    "start_ns": {"type": "integer"},
                    "duration_ns": {"type": "integer"},
                    "thread_id": {"type": "integer"},
                    "depth": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

_TYPES = {"object": dict, "array": list, "string": str,
          "integer": int, "number": (int, float), "boolean": bool}


def _validate(obj, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        py = _TYPES[expected]
        if isinstance(obj, bool) and expected in ("integer", "number"):
            errors.append(f"{path}: expected {expected}, got bool")
            return
        if not isinstance(obj, py):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(obj).__name__}")
            return
    if "enum" in schema and obj not in schema["enum"]:
        errors.append(f"{path}: {obj!r} not in {schema['enum']}")
    for key in schema.get("required", ()):
        if key not in obj:
            errors.append(f"{path}: missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if isinstance(obj, dict) and key in obj:
            _validate(obj[key], sub, f"{path}.{key}", errors)
    if "items" in schema and isinstance(obj, list):
        for i, item in enumerate(obj):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def validate_profile(profile) -> list[str]:
    """Check a parsed ``--profile-json`` object against
    :data:`PROFILE_SCHEMA`; returns the list of problems (empty when
    valid)."""
    errors: list[str] = []
    _validate(profile, PROFILE_SCHEMA, "$", errors)
    if not errors:
        # Cross-field invariants the schema language cannot express.
        for i, event in enumerate(profile["traceEvents"]):
            if event["ph"] == "X" and "dur" not in event:
                errors.append(f"$.traceEvents[{i}]: complete event "
                              "('ph': 'X') missing 'dur'")
        for i, span in enumerate(profile["spans"]):
            if span["duration_ns"] < 0:
                errors.append(f"$.spans[{i}]: negative duration_ns")
    return errors


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def chrome_trace_events(records: list[SpanRecord], *, pid: int = 1) -> list:
    """Spans as Chrome complete events (``ph: X``, microsecond units)."""
    events = []
    for r in sorted(records, key=lambda r: (r.start_ns, r.span_id)):
        args = {str(k): v for k, v in r.args.items()}
        if r.error is not None:
            args["error"] = r.error
        events.append({
            "name": r.name, "cat": "repro", "ph": "X",
            "ts": r.start_ns / 1000.0, "dur": r.duration_ns / 1000.0,
            "pid": pid, "tid": r.thread_id, "args": args,
        })
    return events


def profile_dict(tracer: Tracer, *, tool: str = "repro",
                 pid: int = 1) -> dict:
    """The full ``--profile-json`` object (schema-valid by
    construction; the exporter tests and CI smoke keep it that way)."""
    records = tracer.records()
    return {
        "meta": {"version": PROFILE_VERSION, "tool": tool,
                 "generator": "repro.trace"},
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(records, pid=pid),
        "metrics": tracer.metrics.snapshot(),
        "spans": [{
            "span_id": r.span_id, "name": r.name,
            "start_ns": r.start_ns, "duration_ns": r.duration_ns,
            "thread_id": r.thread_id, "depth": r.depth,
            "parent_id": r.parent_id,
            "args": {str(k): v for k, v in r.args.items()},
            "error": r.error,
        } for r in sorted(records, key=lambda r: r.span_id)],
    }


def write_profile(path: str, tracer: Tracer, *, tool: str = "repro") -> None:
    with open(path, "w") as fh:
        json.dump(profile_dict(tracer, tool=tool), fh, indent=1)
        fh.write("\n")


def text_report(tracer: Tracer) -> str:
    """Flat aggregation: per span name — calls, total/mean/min/max ms —
    then the metrics registry."""
    records = tracer.records()
    by_name: dict[str, list[int]] = {}
    for r in records:
        by_name.setdefault(r.name, []).append(r.duration_ns)
    lines = ["== spans =="]
    if not by_name:
        lines.append("(no spans recorded)")
    else:
        width = max(len(n) for n in by_name)
        lines.append(f"{'name':<{width}}  {'calls':>7} {'total ms':>10} "
                     f"{'mean ms':>10} {'min ms':>10} {'max ms':>10}")
        for name in sorted(by_name,
                           key=lambda n: -sum(by_name[n])):
            ds = by_name[name]
            total = sum(ds)
            lines.append(
                f"{name:<{width}}  {len(ds):>7} {total / 1e6:>10.3f} "
                f"{total / len(ds) / 1e6:>10.3f} {min(ds) / 1e6:>10.3f} "
                f"{max(ds) / 1e6:>10.3f}")
    snap = tracer.metrics.snapshot()
    if snap["counters"]:
        lines.append("== counters ==")
        for name, value in snap["counters"].items():
            lines.append(f"{name} = {value}")
    if snap["gauges"]:
        lines.append("== gauges ==")
        for name, value in snap["gauges"].items():
            lines.append(f"{name} = {value:g}")
    if snap["histograms"]:
        lines.append("== histograms ==")
        for name, h in snap["histograms"].items():
            lines.append(
                f"{name}: n={h['count']} mean={h['mean']:g} "
                f"p50={h['p50']:g} p90={h['p90']:g} p99={h['p99']:g} "
                f"max={h['max']:g}")
    return "\n".join(lines)
