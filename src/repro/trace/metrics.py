"""The metrics registry: counters, gauges and histograms.

Naming convention (docs/observability.md): dot-separated paths,
``<subsystem>.<object>.<what>`` — e.g. ``msr.pread.retries``,
``batch.cache.hits``, ``multiplex.sets_scheduled``.  Latency
histograms end in the unit (``msr.pread.ns``).

Counters on *fault paths* are incremented unconditionally (faults are
rare, and the perfctr runtime's retry accounting is reconciled through
them — see ``msr.faults.transient`` vs ``msr.io.retries``); everything
on a hot path is guarded by ``tracer.enabled`` at the call site, so a
disabled tracer costs one attribute check.
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observations with exact percentile math.

    Stores raw samples up to ``max_samples``; past that, ``count``,
    ``sum``, ``min`` and ``max`` stay exact while percentiles are
    computed over the retained prefix (documented approximation — the
    instrumented paths observe at most a few thousand values per run).
    """

    __slots__ = ("name", "max_samples", "count", "sum", "min", "max",
                 "_samples")

    def __init__(self, name: str, *, max_samples: int = 100_000):
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        """Linear interpolation between closest ranks (the numpy
        default): for sorted samples ``x``, rank ``r = p/100*(n-1)``,
        value ``x[floor(r)] + frac(r) * (x[ceil(r)] - x[floor(r)])``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return float("nan")
        xs = sorted(self._samples)
        rank = p / 100.0 * (len(xs) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return xs[lo]
        return xs[lo] + (rank - lo) * (xs[hi] - xs[lo])

    def summary(self) -> dict:
        """The exported shape (see PROFILE_SCHEMA)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max, "mean": self.mean,
                "p50": self.percentile(50), "p90": self.percentile(90),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name is bound to one kind on first use; reusing it as a
    different kind raises (catches typo'd instrumentation early).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_kind(self, name: str, kind: dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind")

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_kind(name, self._counters)
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_kind(name, self._gauges)
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._check_kind(name, self._histograms)
                h = self._histograms[name] = Histogram(name)
            return h

    # Convenience single-call forms (the instrumentation idiom).

    def incr(self, name: str, n: int = 1) -> None:
        self.counter(name).incr(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str) -> int:
        """A counter's current value (0 if never incremented)."""
        with self._lock:
            c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict:
        """The exported shape: plain dicts, JSON-ready."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.summary()
                               for n, h in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
