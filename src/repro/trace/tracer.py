"""Span-based tracing with a zero-cost disabled path.

The tool suite's own measurement philosophy, turned on itself: the
paper argues instrumentation must be cheap enough to leave compiled
in (the marker API costs a handful of register reads per region
visit).  This tracer holds itself to the same standard — when
disabled, an instrumented call site pays exactly one attribute check
(``tracer.enabled``) and, for ``span()`` call sites, one allocation-free
call returning a shared no-op context manager.

When enabled, ``span()`` records monotonic start/duration
(``time.perf_counter_ns``), the calling thread id, the nesting depth
and parent span on a *thread-local* stack (concurrent threads never
see each other's frames), arbitrary key/value attributes, and the
exception type if the body raised.  Exceptions always propagate; the
stack is unwound in a ``finally`` so a raising span can never corrupt
its siblings' parents.

Instrumentation idioms::

    from repro import trace

    with trace.span("batch.replay", accesses=len(t)):   # context manager
        ...

    @trace.traced("perfctr.wrap")                        # decorator: the
    def wrap(...): ...                                   # enabled check is
                                                         # per call, so
                                                         # enabling tracing
                                                         # later still works
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from functools import wraps

from repro.trace.metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (immutable; exported verbatim)."""

    span_id: int
    name: str
    start_ns: int          # time.perf_counter_ns() at entry
    duration_ns: int
    thread_id: int         # threading.get_ident()
    depth: int             # 0 for a root span on its thread
    parent_id: int | None  # span_id of the enclosing span, if any
    args: dict = field(default_factory=dict)
    error: str | None = None   # exception type name if the body raised


class _NullSpan:
    """The shared disabled-path context manager: no state, no effect."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span (enabled path only)."""

    __slots__ = ("_tracer", "name", "args", "_start_ns", "_id",
                 "_depth", "_parent_id")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        self._id = tracer._next_id()
        self._depth = len(stack)
        self._parent_id = stack[-1] if stack else None
        stack.append(self._id)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter_ns() - self._start_ns
        tracer = self._tracer
        try:
            tracer._record(SpanRecord(
                span_id=self._id, name=self.name,
                start_ns=self._start_ns, duration_ns=duration,
                thread_id=threading.get_ident(), depth=self._depth,
                parent_id=self._parent_id, args=self.args,
                error=exc_type.__name__ if exc_type is not None else None))
        finally:
            # Unwind even if recording failed: a raising span must
            # never leave itself on the stack as a phantom parent.
            stack = tracer._stack()
            if stack and stack[-1] == self._id:
                stack.pop()
            elif self._id in stack:          # defensive: torn nesting
                del stack[stack.index(self._id):]
        return None   # never swallow the body's exception


class Tracer:
    """A span recorder plus its metrics registry.

    ``enabled`` is the one attribute every instrumented call site
    checks; everything else only runs on the enabled path.  One global
    instance (:data:`repro.trace.TRACER`) serves the whole process;
    separate instances exist for tests.
    """

    def __init__(self, *, enabled: bool = False):
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._id_counter = 0
        self._local = threading.local()

    # -- lifecycle -----------------------------------------------------------

    def enable(self, *, reset: bool = True) -> None:
        """Start recording; by default from a clean slate."""
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        """Stop recording.  Collected spans and metrics stay readable
        (that is how the CLI exporters run after the measured work)."""
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._id_counter = 0
        self.metrics.reset()

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **args):
        """Context manager timing one region.  Disabled: returns the
        shared no-op span (one attribute check, zero allocation)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def traced(self, name: str | None = None, **args):
        """Decorator form of :meth:`span`.  The enabled check happens
        on every call, so tracing toggled at runtime is honoured."""
        def decorate(fn):
            span_name = name or fn.__qualname__

            @wraps(fn)
            def wrapper(*a, **kw):
                if not self.enabled:
                    return fn(*a, **kw)
                with _Span(self, span_name, args):
                    return fn(*a, **kw)
            return wrapper
        return decorate

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- reading -------------------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """Finished spans, in completion order (children before their
        parents, exactly like a sampling profiler's stack unwind)."""
        with self._lock:
            return list(self._records)

    def spans_named(self, name: str) -> list[SpanRecord]:
        return [r for r in self.records() if r.name == name]
