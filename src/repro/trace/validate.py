"""``python -m repro.trace.validate profile.json``: check a
``--profile-json`` dump against the exporter schema.

Exit 0 when the file is schema-valid Chrome-trace-compatible output,
exit 1 with one problem per line otherwise.  The CI profile-smoke
step runs this against real CLI output so exporter drift fails fast.
"""

from __future__ import annotations

import json
import sys

from repro.trace.export import validate_profile


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.trace.validate <profile.json>",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            profile = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro.trace.validate: cannot load {argv[0]}: {exc}",
              file=sys.stderr)
        return 1
    problems = validate_profile(profile)
    for problem in problems:
        print(f"repro.trace.validate: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{argv[0]}: valid profile "
          f"({len(profile['traceEvents'])} trace events, "
          f"{len(profile['metrics']['counters'])} counters)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
