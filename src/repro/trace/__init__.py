"""``repro.trace``: the tool suite's self-observability layer.

LIKWID instruments *other* programs; this package instruments the
reproduction itself, with the same cost discipline the paper demands
of its marker API.  Three pieces:

* a span tracer (:class:`~repro.trace.tracer.Tracer`) — monotonic
  nanosecond timing, thread-local nesting, context-manager and
  decorator forms;
* a metrics registry (:class:`~repro.trace.metrics.MetricsRegistry`)
  — counters, gauges and histograms with exact percentile math;
* exporters (:mod:`repro.trace.export`) — Chrome ``trace_event`` JSON
  (open in ``about:tracing`` or https://ui.perfetto.dev), a flat text
  report, and the schema-validated ``--profile-json`` dump.

One process-global :data:`TRACER` serves every instrumented module;
the module-level helpers below delegate to it.  **Disabled tracing
costs one attribute check** at every call site (guarded by
``benchmarks/test_bench_trace_overhead.py``): hot paths are written
as ``if TRACER.enabled: ...``, and :func:`span` returns a shared
no-op context manager when disabled.

Fault-path counters are the one always-on exception: the msr driver
and the perfctr retry loop count ``msr.faults.*`` / ``msr.io.*``
unconditionally so their accounting is reconciled through a single
registry (see docs/observability.md).
"""

from __future__ import annotations

from repro.trace.metrics import (Counter, Gauge, Histogram,
                                 MetricsRegistry)
from repro.trace.tracer import SpanRecord, Tracer

#: The process-global tracer every instrumented subsystem shares.
TRACER = Tracer()


def enable(*, reset: bool = True) -> None:
    """Turn the global tracer on (fresh slate by default)."""
    TRACER.enable(reset=reset)


def disable() -> None:
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled


def reset() -> None:
    TRACER.reset()


def span(name: str, **args):
    """``with trace.span("replay", engine="batch"): ...``"""
    return TRACER.span(name, **args)


def traced(name: str | None = None, **args):
    """Decorator form: ``@trace.traced("perfctr.wrap")``."""
    return TRACER.traced(name, **args)


def metrics() -> MetricsRegistry:
    """The global tracer's registry."""
    return TRACER.metrics


def incr(name: str, n: int = 1) -> None:
    TRACER.metrics.incr(name, n)


def observe(name: str, value: float) -> None:
    TRACER.metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    TRACER.metrics.set_gauge(name, value)


def records() -> list[SpanRecord]:
    return TRACER.records()


__all__ = ["TRACER", "Tracer", "SpanRecord",
           "MetricsRegistry", "Counter", "Gauge", "Histogram",
           "enable", "disable", "is_enabled", "reset",
           "span", "traced", "metrics", "incr", "observe", "set_gauge",
           "records"]
