"""Exception hierarchy for the repro (LIKWID reproduction) package.

Every error raised by the package derives from :class:`ReproError` so
callers can catch the whole family with one clause, mirroring how the
original C tools funnel failures into a small set of exit codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CpuidError(ReproError):
    """Malformed or unsupported CPUID request (unknown leaf/subleaf)."""


class MsrError(ReproError):
    """Invalid MSR access: undefined address, bad width, or permission."""


class MsrPermissionError(MsrError):
    """Device-node permission failure (EACCES/EPERM on /dev/cpu/N/msr).

    Raised when an msr device is opened for writing without write
    permission — the "run as root or chmod the device" installation
    stumbling block the paper documents.  Kept as a subclass so the
    perfctr runtime can degrade uncore measurements instead of
    aborting, while generic MsrError stays fatal."""


class MsrIOError(MsrError):
    """An I/O fault on an open msr device file (pread/pwrite level).

    Mirrors the errno a real device file would return:

    * ``EAGAIN`` — transient, the operation may succeed on retry
    * ``EIO``    — sticky hardware/driver fault on an address
    * ``ENODEV`` — the msr module disappeared under the open file

    ``transient`` tells the retry layer whether repeating the call can
    help; ``exhausted`` is set when a retry loop gave up on a fault
    that was nominally transient."""

    def __init__(self, errno_name: str, message: str, *,
                 transient: bool = False, cpu: int | None = None,
                 address: int | None = None, exhausted: bool = False):
        super().__init__(f"[{errno_name}] {message}")
        self.errno_name = errno_name
        self.transient = transient
        self.cpu = cpu
        self.address = address
        self.exhausted = exhausted


class DegradedError(ReproError):
    """A measurement would have produced partial (NaN) results and the
    caller asked for strict I/O semantics (``--strict-io``)."""


class ProcessKilled(ReproError):
    """The simulated tool process was killed (SIGKILL model).

    Raised by the msr driver when a :class:`FaultPlan` with
    ``kill_after=N`` fires: the process model dies *mid-operation*
    with no teardown — every subsequent driver operation raises this
    again (a dead process executes nothing), so whatever MSR state the
    session had mutated stays mutated and its write-ahead journal
    stays orphaned until ``--recover`` replays it."""


class SimulatedInterrupt(ReproError):
    """The simulated tool process received SIGINT (``sigint_after=N``).

    Unlike :class:`ProcessKilled` this is a *graceful* abort: the
    exception propagates through the session context managers, so the
    normal teardown (counters disabled, socket locks released, journal
    retired) still runs — the contract tests assert the difference."""


class JournalError(ReproError):
    """Write-ahead journal failure (bad record, unclassified register)."""


class JournalCorruptError(JournalError):
    """A journal record *before* the tail failed its checksum.

    A torn tail record is expected (the crash happened mid-append) and
    is silently truncated; a bad record with valid records after it
    means the history is lost and recovery would mis-restore — the
    recovery engine refuses and the CLI exits 'unrecoverable'."""


class SocketLockError(MsrError):
    """An uncore socket lock is held by another *live* owner.

    Subclasses :class:`MsrError` so the perfctr runtime can degrade
    the affected socket's uncore events to NaN (the same policy as a
    permission failure) instead of aborting the whole measurement.
    Locks whose owner is dead are never reported through this error —
    they are reclaimed in place (stale-lock recovery)."""

    def __init__(self, message: str, *, socket: int | None = None,
                 owner_pid: int | None = None):
        super().__init__(message)
        self.socket = socket
        self.owner_pid = owner_pid


class ServerError(ReproError):
    """Concurrent-session server failure: protocol violation, unknown
    node/session, or a submission the scheduler cannot admit.

    Every instance carries a stable machine-readable ``code`` and a
    ``retryable`` flag so clients can decide *mechanically* whether
    repeating the request can help — "transient overload" retries,
    "node unknown" never does — instead of string-matching the
    human-readable message.  Error replies on the wire carry both
    fields verbatim (docs/likwid-server.md lists the catalog).
    """

    def __init__(self, message: str, *, code: str = "server-error",
                 retryable: bool = False):
        super().__init__(message)
        self.code = code
        self.retryable = retryable


class ChaosError(ServerError):
    """An injected network fault from a :class:`~repro.server.chaos
    .ChaosPlan` (connection refused, torn line, lost reply...).

    Always retryable: chaos models transient network weather, and the
    client retry layer must absorb it exactly like the perfctr retry
    loop absorbs transient EAGAIN from the msr driver."""

    def __init__(self, message: str, *, kind: str):
        super().__init__(message, code=f"chaos-{kind}", retryable=True)
        self.kind = kind


class TopologyError(ReproError):
    """Topology decoding failed or produced an inconsistent layout."""


class AffinityError(ReproError):
    """Invalid core list, skip mask, or pinning request."""


class SchedulerError(ReproError):
    """OS-level scheduling failure (no runnable core, unknown thread)."""


class EventError(ReproError):
    """Unknown performance event or malformed event string."""


class CounterError(ReproError):
    """Counter allocation failure: bad counter name, conflict, or an
    event placed on a counter that cannot count it."""


class GroupError(ReproError):
    """Unknown performance group or unsupported group on this arch."""


class MarkerError(ReproError):
    """Marker API misuse: unbalanced, nested, or unregistered regions."""


class FeatureError(ReproError):
    """likwid-features failure: unknown feature or read-only feature."""


class WorkloadError(ReproError):
    """Workload construction or execution failure."""


class PapiError(ReproError):
    """PAPI-baseline library error (mirrors PAPI's negative codes)."""

    def __init__(self, code: int, message: str):
        super().__init__(f"PAPI error {code}: {message}")
        self.code = code
