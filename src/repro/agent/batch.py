"""Samples and batches: the agent's wire format.

One measurement window produces one :class:`SampleBatch` holding
normalized :class:`AgentSample` records — per-cpu derived metrics plus
per-socket rollups, the shape the collectd likwid plugin dispatches
(per-cpu values, per-socket values, normalized FLOPS).

Normalization follows the plugin's ``normalizeFlops`` idiom: every
``MFlops/s`` metric is additionally published under one canonical name
(``flops_any``) scaled to single-precision-equivalent operations, so a
fleet mixing FLOPS_DP and FLOPS_SP windows still aggregates one
comparable series.  Bandwidth metrics (``MBytes/s``) and FLOPS are
*extensive* — summing them across the cpus of a socket is meaningful —
so each gets a socket-scope rollup sample; ratio-like metrics (CPI,
miss rates) stay per-cpu only.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace

from repro.core.perfctr.measurement import MeasurementResult
from repro.hw.spec import ArchSpec

#: Canonical name for normalized floating-point throughput.
FLOPS_ANY = "flops_any [MFlops/s]"

#: Single-precision-equivalent multipliers per metric flavour (the
#: collectd plugin's ``xFlops``: one DP op does the work of two SP ops).
_FLOPS_SCALE = (("DP MFlops/s", 2.0), ("SP MFlops/s", 1.0))


@dataclass(frozen=True)
class AgentSample:
    """One normalized metric value at one point in the stream."""

    node: str
    group: str
    window: int          # global window index (monotonic per node)
    time: float          # window end, seconds since agent start
    scope: str           # "cpu" | "socket"
    ident: int           # cpu id or socket id
    metric: str
    value: float
    seq: int = 0         # per-node emission sequence number

    def to_json(self) -> str:
        return json.dumps({
            "node": self.node, "group": self.group,
            "window": self.window, "time": self.time,
            "scope": self.scope, "id": self.ident,
            "metric": self.metric, "value": self.value,
            "seq": self.seq,
        }, sort_keys=True)


@dataclass(frozen=True)
class SampleBatch:
    """All samples of one node's measurement window."""

    node: str
    group: str
    window: int
    time: float          # window end, seconds since agent start
    duration: float      # measured window length, seconds
    samples: tuple[AgentSample, ...] = ()
    seq: int = 0         # per-node batch sequence number

    def __len__(self) -> int:
        return len(self.samples)

    def with_samples(self, samples) -> "SampleBatch":
        return replace(self, samples=tuple(samples))


def _extensive(metric: str) -> bool:
    """Metrics that may be summed across a socket's cpus."""
    return "MFlops/s" in metric or "MBytes/s" in metric


def flops_normalized(metric: str, value: float) -> float | None:
    """SP-equivalent MFlops/s for a FLOPS metric (None otherwise)."""
    for needle, scale in _FLOPS_SCALE:
        if needle in metric:
            return value * scale
    return None


def normalize_result(node: str, group: str, window: int, time: float,
                     duration: float, result: MeasurementResult,
                     spec: ArchSpec, *, seq_start: int = 0) \
        -> list[AgentSample]:
    """Flatten one window's :class:`MeasurementResult` into samples.

    Per-cpu samples carry every derived group metric plus the
    normalized ``flops_any`` series; per-socket samples roll up the
    extensive (throughput) metrics over the socket's measured cpus.
    NaN metric values (degraded uncore reads) stay NaN per-cpu — the
    sink layer is the wrong place to hide degradation — but are
    excluded from socket sums so one degraded cpu cannot poison the
    socket rollup.
    """
    samples: list[AgentSample] = []
    seq = seq_start
    socket_sums: dict[tuple[int, str], float] = {}

    def add(scope: str, ident: int, metric: str, value: float) -> None:
        nonlocal seq
        samples.append(AgentSample(node, group, window, time, scope,
                                   ident, metric, value, seq))
        seq += 1

    for cpu in result.cpus:
        socket = spec.socket_of(cpu)
        for metric, value in result.metrics.get(cpu, {}).items():
            add("cpu", cpu, metric, value)
            normalized = flops_normalized(metric, value)
            if normalized is not None:
                add("cpu", cpu, FLOPS_ANY, normalized)
                metric, value = FLOPS_ANY, normalized
            if _extensive(metric) and not math.isnan(value):
                key = (socket, metric)
                socket_sums[key] = socket_sums.get(key, 0.0) + value
    for (socket, metric), value in sorted(socket_sums.items()):
        add("socket", socket, metric, value)
    return samples


@dataclass
class LaneAccounting:
    """Exact sample accounting of one sink lane.

    The invariant every soak test pins: ``offered == emitted +
    dropped`` at all times — no sample is ever unaccounted for."""

    sink: str
    offered: int = 0
    emitted: int = 0
    dropped: int = 0

    @property
    def consistent(self) -> bool:
        return self.offered == self.emitted + self.dropped

    def as_dict(self) -> dict:
        return {"sink": self.sink, "offered": self.offered,
                "emitted": self.emitted, "dropped": self.dropped}


@dataclass
class AgentReport:
    """What one agent run did: windows, batches, per-lane accounting."""

    node: str
    windows: int = 0
    batches: int = 0
    samples: int = 0                       # produced (pre-downsampling)
    lanes: list[LaneAccounting] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return all(lane.consistent and lane.offered == self.samples
                   for lane in self.lanes)

    def inconsistencies(self) -> list[str]:
        out = []
        for lane in self.lanes:
            if not lane.consistent:
                out.append(
                    f"{self.node}/{lane.sink}: offered {lane.offered} != "
                    f"emitted {lane.emitted} + dropped {lane.dropped}")
            if lane.offered != self.samples:
                out.append(
                    f"{self.node}/{lane.sink}: offered {lane.offered} != "
                    f"produced {self.samples}")
        return out
