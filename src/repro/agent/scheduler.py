"""The monitoring loop: group rotation over a PerfCtrSession.

``likwid-agent`` is the paper's daemon idiom (``likwid-perfctr -d``
around ``sleep``) grown into a long-running monitor, shaped like the
collectd likwid plugin: rotate through a configured list of metric
groups, give each group one *measurement window* (program counters,
let the node run, read, tear down), normalize the derived metrics and
hand the batch to the sink lanes.  The loop never blocks on a slow
sink — back-pressure is the lane's deterministic downsampling
(:mod:`repro.agent.sinks`).

Window timing reuses the timeline layer's overrun rule
(:func:`~repro.core.perfctr.timeline.slice_duration`): a window that
ran long is accounted at its measured duration, so published rates
stay correct under scheduling jitter.
"""

from __future__ import annotations

import math
import time as _time
from collections.abc import Callable
from dataclasses import dataclass

from repro import trace as _trace
from repro.agent.batch import AgentReport, SampleBatch, normalize_result
from repro.agent.sinks import Sink, SinkLane
from repro.core.perfctr.measurement import LikwidPerfCtr
from repro.core.perfctr.timeline import slice_duration
from repro.errors import CounterError
from repro.hw.events import Channel
from repro.hw.machine import SimMachine


@dataclass(frozen=True)
class AgentConfig:
    """One agent's monitoring plan."""

    groups: tuple[str, ...]       # rotation list, in order
    cpus: tuple[int, ...]
    window: float = 1.0           # seconds of measurement per group
    rotations: int = 1            # full passes through the group list
    node: str = "node0"
    seed: int = 0
    strict_io: bool = False

    def __post_init__(self):
        if not self.groups:
            raise CounterError("agent needs at least one metric group")
        if not self.cpus:
            raise CounterError("agent needs at least one cpu")
        if self.window <= 0:
            raise CounterError("measurement window must be positive")
        if self.rotations < 1:
            raise CounterError("need at least one rotation")


class SyntheticLoad:
    """A deterministic, phase-varying stand-in for the monitored node.

    Per window it applies one slice of channel counts whose intensity
    varies smoothly with the window index and cpu (so rollup
    percentiles are non-degenerate), seeded per node so a fleet of
    nodes is diverse but every run is reproducible.  ``overrun_rate``
    makes a seeded fraction of windows run long (reported through the
    return value, the timeline overrun convention).
    """

    def __init__(self, machine: SimMachine, cpus, *, seed: int = 0,
                 overrun_rate: float = 0.0, overrun_factor: float = 3.0,
                 sockets: tuple[int, ...] | None = None):
        self.machine = machine
        self.cpus = list(cpus)
        self.seed = seed
        self.overrun_rate = overrun_rate
        self.overrun_factor = overrun_factor
        # Restrict uncore application to these sockets (repro.server:
        # concurrent sessions on disjoint sockets must not perturb
        # each other's uncore counts — bit-identity to a standalone
        # run depends on it).  None keeps the historical behavior of
        # driving every socket's uncore clock.
        self.sockets = tuple(sockets) if sockets is not None else None

    def _utilization(self, window: int, cpu: int) -> float:
        phase = 0.7 * window + 0.45 * cpu + 0.13 * self.seed
        return 0.55 + 0.35 * math.sin(phase)

    def __call__(self, window: int, group: str,
                 seconds: float) -> float:
        # Seeded overrun decision, stable per (seed, window).
        duration = seconds
        if self.overrun_rate > 0.0:
            draw = math.sin(12.9898 * (window + 1) + 78.233 * self.seed)
            if (draw - math.floor(draw)) < self.overrun_rate:
                duration = seconds * self.overrun_factor
        clock = self.machine.spec.clock_hz
        core: dict[int, dict[Channel, float]] = {}
        for cpu in self.cpus:
            cycles = clock * duration * self._utilization(window, cpu)
            core[cpu] = {
                Channel.CORE_CYCLES: cycles,
                Channel.REF_CYCLES: cycles,
                Channel.INSTRUCTIONS: cycles * 1.1,
                Channel.FLOPS_PACKED_DP: cycles * 0.12,
                Channel.FLOPS_SCALAR_DP: cycles * 0.05,
                Channel.FLOPS_PACKED_SP: cycles * 0.08,
                Channel.FLOPS_SCALAR_SP: cycles * 0.04,
                Channel.LOADS: cycles * 0.30,
                Channel.STORES: cycles * 0.15,
                Channel.L1D_REPLACEMENT: cycles * 0.012,
                Channel.L1D_EVICT: cycles * 0.006,
                Channel.L2_LINES_IN: cycles * 0.004,
                Channel.L2_LINES_OUT: cycles * 0.002,
                Channel.L2_REQUESTS: cycles * 0.015,
                Channel.L2_MISSES: cycles * 0.004,
                Channel.BRANCHES: cycles * 0.18,
                Channel.BRANCH_MISSES: cycles * 0.004,
                Channel.DTLB_MISSES: cycles * 0.001,
                Channel.DRAM_READS: cycles * 0.002,
                Channel.DRAM_WRITES: cycles * 0.001,
            }
        uncore = None
        if self.machine.spec.pmu.has_uncore:
            uncore = {}
            sockets = self.sockets if self.sockets is not None \
                else range(self.machine.spec.sockets)
            for socket in sockets:
                busy = sum(core[c][Channel.CORE_CYCLES]
                           for c in self.cpus
                           if self.machine.spec.socket_of(c) == socket)
                uncore[socket] = {
                    Channel.UNC_CYCLES: clock * duration,
                    Channel.L3_LINES_IN: busy * 0.003,
                    Channel.L3_LINES_OUT: busy * 0.001,
                    Channel.UNC_L3_HITS: busy * 0.010,
                    Channel.UNC_L3_MISSES: busy * 0.003,
                    Channel.MEM_READS: busy * 0.002,
                    Channel.MEM_WRITES: busy * 0.001,
                }
        self.machine.apply_counts(core, uncore, elapsed_seconds=duration)
        return duration


class MonitorAgent:
    """One node's continuous monitor.

    Rotates through ``config.groups``; each window is one full
    program/run/read/teardown cycle through the access backend (so
    journaling, fault injection and crash recovery all apply per
    window, exactly like repeated ``likwid-perfctr`` invocations),
    then a normalized batch pushed through every sink lane.
    """

    def __init__(self, machine: SimMachine, backend, config: AgentConfig,
                 *, sinks: tuple[Sink, ...] = (),
                 workload: Callable[[int, str, float], object] | None = None,
                 retry_policy=None):
        self.machine = machine
        self.config = config
        self.perfctr = LikwidPerfCtr(machine, backend=backend,
                                     strict_io=config.strict_io,
                                     retry_policy=retry_policy)
        self.lanes = [SinkLane(sink, seed=config.seed) for sink in sinks]
        self.workload = workload if workload is not None else \
            SyntheticLoad(machine, config.cpus, seed=config.seed)
        self.report = AgentReport(config.node)
        self.warnings: list[str] = []
        self._sample_seq = 0
        self._batch_seq = 0
        self._clock = 0.0          # agent-relative seconds

    def run(self) -> AgentReport:
        """Execute the full rotation plan; returns the accounting."""
        cfg = self.config
        with _trace.span("agent.run", node=cfg.node,
                         groups=len(cfg.groups), rotations=cfg.rotations):
            window = 0
            for _rotation in range(cfg.rotations):
                for group in cfg.groups:
                    batch = self.measure_window(group, window)
                    self.dispatch(batch)
                    window += 1
        for lane in self.lanes:
            lane.close()
        self.report.lanes = [lane.accounting for lane in self.lanes]
        return self.report

    def measure_window(self, group: str, window: int) -> SampleBatch:
        """One measurement window: counters on, run, read, normalize."""
        cfg = self.config
        with _trace.span("agent.window", group=group, window=window):
            session = self.perfctr.session(list(cfg.cpus), group)
            began = _time.perf_counter()
            with session:
                returned = self.workload(window, group, cfg.window)
                session.stop()
                duration = slice_duration(
                    cfg.window, _time.perf_counter() - began, returned)
                result = session.read(wall_time=duration)
            self.warnings.extend(result.warnings)
        self._clock += duration
        samples = normalize_result(
            cfg.node, group, window, self._clock, duration, result,
            self.machine.spec, seq_start=self._sample_seq)
        self._sample_seq += len(samples)
        batch = SampleBatch(cfg.node, group, window, self._clock,
                            duration, tuple(samples),
                            seq=self._batch_seq)
        self._batch_seq += 1
        self.report.windows += 1
        self.report.samples += len(samples)
        if _trace.TRACER.enabled:
            _trace.incr("agent.windows")
            _trace.incr("agent.samples.produced", len(samples))
        return batch

    def dispatch(self, batch: SampleBatch) -> None:
        for lane in self.lanes:
            lane.push(batch)
        self.report.batches += 1
        if _trace.TRACER.enabled:
            _trace.incr("agent.batches")
