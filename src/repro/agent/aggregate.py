"""The fleet ingest pipeline: merge per-node batches into rollups.

One :class:`Aggregator` is the single ingest path many nodes' agents
feed ("millions of users" = many tenants' metrics through one fast
pipeline).  It keeps:

* per-node sample/batch/window counts (the reconciliation surface —
  a node's ingested count must equal its lane's ``emitted``);
* per ``(group, metric)`` distributions with exact p50/p99 (reusing
  :class:`repro.trace.metrics.Histogram`, the same percentile math the
  observability layer ships);
* per ``(node, socket, metric)`` totals for the socket-scope samples.

``rollup()`` renders everything as a plain JSON-ready dict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.agent.batch import SampleBatch
from repro.agent.sinks import Sink
from repro.trace.metrics import Histogram


@dataclass
class NodeIngest:
    """What one node has contributed to the pipeline."""

    batches: int = 0
    samples: int = 0
    windows: set = field(default_factory=set)
    nan_samples: int = 0      # degraded (NaN) values, kept visible


class Aggregator:
    """Merges sample batches from many nodes into fleet rollups."""

    def __init__(self):
        self.nodes: dict[str, NodeIngest] = {}
        self._metrics: dict[tuple[str, str], Histogram] = {}
        self._sockets: dict[tuple[str, int, str], float] = {}
        self.total_samples = 0

    def ingest(self, batch: SampleBatch) -> None:
        node = self.nodes.setdefault(batch.node, NodeIngest())
        node.batches += 1
        node.windows.add(batch.window)
        for sample in batch.samples:
            node.samples += 1
            self.total_samples += 1
            if math.isnan(sample.value):
                node.nan_samples += 1
                continue
            key = (sample.group, sample.metric)
            hist = self._metrics.get(key)
            if hist is None:
                hist = self._metrics[key] = Histogram(
                    f"{sample.group}/{sample.metric}")
            hist.observe(sample.value)
            if sample.scope == "socket":
                skey = (sample.node, sample.ident, sample.metric)
                self._sockets[skey] = \
                    self._sockets.get(skey, 0.0) + sample.value

    def node_samples(self, node: str) -> int:
        ingest = self.nodes.get(node)
        return ingest.samples if ingest is not None else 0

    def rollup(self) -> dict:
        """The fleet-wide summary, JSON-ready."""
        groups: dict[str, dict[str, dict]] = {}
        for (group, metric), hist in sorted(self._metrics.items()):
            groups.setdefault(group, {})[metric] = {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p99": hist.percentile(99),
                "min": hist.min,
                "max": hist.max,
            }
        sockets: dict[str, dict[str, float]] = {}
        for (node, socket, metric), total in sorted(self._sockets.items()):
            sockets.setdefault(f"{node}/socket{socket}", {})[metric] = total
        return {
            "nodes": {
                name: {"batches": n.batches, "samples": n.samples,
                       "windows": len(n.windows),
                       "nan_samples": n.nan_samples}
                for name, n in sorted(self.nodes.items())
            },
            "groups": groups,
            "sockets": sockets,
            "total_samples": self.total_samples,
        }


class AggregatorSink(Sink):
    """The sink that feeds an :class:`Aggregator` — a node's lane
    pushes into the shared ingest pipeline through one of these
    (optionally rate-limited via ``max_batch``, which makes the
    pipeline exert real back-pressure on that node)."""

    kind = "aggregator"

    def __init__(self, aggregator: Aggregator, *,
                 max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        self.aggregator = aggregator

    def emit(self, batch: SampleBatch) -> None:
        self.aggregator.ingest(batch)
