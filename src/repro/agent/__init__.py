"""``repro.agent``: continuous monitoring and fleet ingest (ISSUE 8).

The paper demonstrates daemon-style monitoring by wrapping ``sleep``;
this package grows that idiom into ``likwid-agent`` (the ninth
front-end): a long-running monitor that rotates metric groups over a
:class:`~repro.core.perfctr.measurement.PerfCtrSession`
(:mod:`~repro.agent.scheduler`), normalizes derived metrics into
per-cpu and per-socket samples (:mod:`~repro.agent.batch`), pushes
them through a pluggable sink layer with deterministic back-pressure
(:mod:`~repro.agent.sinks`), and scales to a simulated fleet feeding
one aggregation pipeline (:mod:`~repro.agent.fleet`,
:mod:`~repro.agent.aggregate`).
"""

from repro.agent.aggregate import Aggregator, AggregatorSink
from repro.agent.batch import (FLOPS_ANY, AgentReport, AgentSample,
                               LaneAccounting, SampleBatch,
                               normalize_result)
from repro.agent.fleet import (SOAK_RETRIES, FleetReport, FleetSimulator,
                               NodeSpec, default_fleet)
from repro.agent.scheduler import AgentConfig, MonitorAgent, SyntheticLoad
from repro.agent.sinks import (CollectorSink, JsonlSink, LineProtocolSink,
                               RingSink, Sink, SinkLane, downsample)

__all__ = [
    "FLOPS_ANY",
    "AgentConfig",
    "AgentReport",
    "AgentSample",
    "Aggregator",
    "AggregatorSink",
    "CollectorSink",
    "FleetReport",
    "FleetSimulator",
    "JsonlSink",
    "LaneAccounting",
    "LineProtocolSink",
    "MonitorAgent",
    "NodeSpec",
    "RingSink",
    "SOAK_RETRIES",
    "SampleBatch",
    "Sink",
    "SinkLane",
    "SyntheticLoad",
    "default_fleet",
    "downsample",
    "normalize_result",
]
