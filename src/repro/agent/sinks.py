"""The agent's pluggable sink layer with explicit back-pressure.

A :class:`Sink` accepts batches of normalized samples; a
:class:`SinkLane` wraps one sink with the agent-side flow control:
when the sink is slow (its :meth:`Sink.capacity` is smaller than the
batch), the lane *downsamples deterministically* instead of blocking
the measurement loop — the drop policy of a monitoring agent, where a
stale complete history is worth less than a fresh thinned one.

Every lane keeps exact :class:`~repro.agent.batch.LaneAccounting`
(``offered == emitted + dropped`` always) and surfaces drops through
``repro.trace`` counters (``agent.samples.dropped`` is always-on, like
the msr fault counters, so accounting reconciles through one
registry).

Shipped sinks:

* :class:`JsonlSink` — one JSON object per sample, append-only file;
* :class:`RingSink` — bounded in-memory ring, oldest evicted first;
* :class:`LineProtocolSink` — influx-style line protocol
  (``likwid,node=n0,...,metric=... value=<v> <ns>``), modeled on the
  collectd ecosystem's influx writer;
* :class:`CollectorSink` — unbounded in-memory list (tests, fleet
  ingest plumbing).
"""

from __future__ import annotations

import random
from collections import deque
from typing import IO, Iterable

from repro import trace as _trace
from repro.agent.batch import AgentSample, LaneAccounting, SampleBatch


class Sink:
    """One destination for sample batches.

    ``max_batch`` models the sink's ingestion speed: the number of
    samples it can absorb per push (None = unbounded).  Real sinks
    are bounded by network or disk; the simulated ones expose the
    knob directly so back-pressure is deterministic and testable.
    """

    kind = "sink"

    def __init__(self, *, max_batch: int | None = None):
        self.max_batch = max_batch

    @property
    def name(self) -> str:
        return self.kind

    def capacity(self, offered: int) -> int | None:
        """How many of *offered* samples the sink will accept right
        now; None means all of them.  Called once per push — a
        stateful sink may model recovery or fatigue here."""
        return self.max_batch

    def emit(self, batch: SampleBatch) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class CollectorSink(Sink):
    """Unbounded in-memory collection (tests and ingest plumbing)."""

    kind = "collector"

    def __init__(self, *, max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        self.batches: list[SampleBatch] = []

    @property
    def samples(self) -> list[AgentSample]:
        return [s for b in self.batches for s in b.samples]

    def emit(self, batch: SampleBatch) -> None:
        self.batches.append(batch)


class RingSink(Sink):
    """Bounded in-memory ring: keeps the newest ``capacity`` samples.

    Eviction is oldest-first, so :meth:`latest` always returns the
    most recent history newest-first — the "what just happened"
    query a monitoring dashboard asks.  Evicted samples were
    *accepted* (they are not back-pressure drops); ``evicted`` counts
    them separately."""

    kind = "ring"

    def __init__(self, ring_capacity: int, *,
                 max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        if ring_capacity < 1:
            raise ValueError("ring capacity must be positive")
        self.ring_capacity = ring_capacity
        self.evicted = 0
        self._ring: deque[AgentSample] = deque(maxlen=ring_capacity)

    def emit(self, batch: SampleBatch) -> None:
        for sample in batch.samples:
            if len(self._ring) == self.ring_capacity:
                self.evicted += 1
            self._ring.append(sample)

    def latest(self, n: int | None = None) -> list[AgentSample]:
        """The newest samples, newest first."""
        out = list(self._ring)
        out.reverse()
        return out if n is None else out[:n]

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink(Sink):
    """One JSON object per sample, appended to a text stream."""

    kind = "jsonl"

    def __init__(self, stream: IO[str], *, max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        self.stream = stream
        self.lines = 0

    def emit(self, batch: SampleBatch) -> None:
        for sample in batch.samples:
            self.stream.write(sample.to_json())
            self.stream.write("\n")
            self.lines += 1

    def close(self) -> None:
        self.stream.flush()


def _escape_tag(value: str) -> str:
    """Influx line-protocol tag escaping: commas, spaces, equals."""
    return (value.replace("\\", "\\\\").replace(",", "\\,")
            .replace(" ", "\\ ").replace("=", "\\="))


class LineProtocolSink(Sink):
    """Influx-style line protocol writer.

    ``likwid,node=n0,group=MEM,scope=socket,id=0,metric=Memory\\ band...
    value=123.4 <timestamp_ns>`` — tags identify the series, the one
    field carries the value, and the timestamp is the window-relative
    time in integral nanoseconds (the agent clock, not wall time, so
    replays are bit-identical)."""

    kind = "line"

    def __init__(self, stream: IO[str], *,
                 measurement: str = "likwid",
                 max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        self.stream = stream
        self.measurement = measurement
        self.lines = 0

    def format(self, sample: AgentSample) -> str:
        tags = (f"node={_escape_tag(sample.node)},"
                f"group={_escape_tag(sample.group)},"
                f"scope={sample.scope},id={sample.ident},"
                f"metric={_escape_tag(sample.metric)}")
        return (f"{self.measurement},{tags} value={sample.value!r} "
                f"{int(sample.time * 1e9)}")

    def emit(self, batch: SampleBatch) -> None:
        for sample in batch.samples:
            self.stream.write(self.format(sample))
            self.stream.write("\n")
            self.lines += 1

    def close(self) -> None:
        self.stream.flush()


def downsample(samples: Iterable[AgentSample], keep: int, seed: int,
               batch_seq: int) -> list[AgentSample]:
    """Deterministically thin *samples* down to *keep* survivors.

    The selection is a seeded draw keyed by ``(seed, batch_seq)`` —
    the same agent seed and batch always drop the same samples, so a
    replayed run (and a regression test) reproduces the stream
    bit-for-bit.  Survivors keep their original order."""
    samples = list(samples)
    if keep <= 0:
        return []
    if keep >= len(samples):
        return samples
    rng = random.Random(f"{seed}:{batch_seq}")
    indices = sorted(rng.sample(range(len(samples)), keep))
    return [samples[i] for i in indices]


class SinkLane:
    """One sink plus the agent-side flow control in front of it.

    ``push`` never blocks and never fails accounting: every offered
    sample is either emitted into the sink or counted as dropped.
    """

    def __init__(self, sink: Sink, *, seed: int = 0):
        self.sink = sink
        self.seed = seed
        self.accounting = LaneAccounting(sink.name)

    def push(self, batch: SampleBatch) -> SampleBatch:
        """Offer one batch; returns what was actually emitted."""
        acct = self.accounting
        offered = len(batch.samples)
        acct.offered += offered
        cap = self.sink.capacity(offered)
        if cap is not None and cap < offered:
            kept = downsample(batch.samples, cap, self.seed, batch.seq)
            dropped = offered - len(kept)
            acct.dropped += dropped
            # Always-on, like the msr fault counters: drop accounting
            # must reconcile through the shared registry even when
            # tracing is off.
            _trace.incr("agent.samples.dropped", dropped)
            batch = batch.with_samples(kept)
        self.sink.emit(batch)
        acct.emitted += len(batch.samples)
        if _trace.TRACER.enabled:
            _trace.incr("agent.samples.emitted", len(batch.samples))
        return batch

    def close(self) -> None:
        self.sink.close()
