"""Fleet simulation: many monitored nodes, one ingest pipeline.

A :class:`FleetSimulator` runs tens-to-hundreds of simulated nodes —
mixed architectures, per-node seeds, per-node fault plans, both access
backends — each under its own :class:`~repro.agent.scheduler
.MonitorAgent`, all feeding one :class:`~repro.agent.aggregate
.Aggregator`.  This is the soak surface: group rotation × journaling ×
fault injection × back-pressure over long runs, with exact sample
accounting at the end (:meth:`FleetReport.inconsistencies` must come
back empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import trace as _trace
from repro.agent.aggregate import Aggregator, AggregatorSink
from repro.agent.batch import AgentReport
from repro.agent.scheduler import AgentConfig, MonitorAgent, SyntheticLoad
from repro.core.perfctr.counters import RetryPolicy
from repro.hw.arch import available, create_machine
from repro.oskern.access import ACCESS_MODES, open_backend
from repro.oskern.msr_driver import FaultPlan

#: Backoff-free retries: a fleet soak absorbs thousands of injected
#: transient faults; sleeping between retries would only slow the
#: simulation down without changing any outcome.
SOAK_RETRIES = RetryPolicy(max_attempts=8, backoff_base=0.0,
                           backoff_cap=0.0)


@dataclass(frozen=True)
class NodeSpec:
    """One simulated node's identity and failure model."""

    name: str
    arch: str = "nehalem_ep"
    seed: int = 0
    access_mode: str = "msr"
    faults: str | None = None          # FaultPlan.from_string syntax
    ingest_capacity: int | None = None  # per-push sample budget
    overrun_rate: float = 0.0


def default_fleet(count: int, *, seed: int = 0,
                  archs: tuple[str, ...] | None = None,
                  access_modes: tuple[str, ...] = tuple(ACCESS_MODES),
                  faults: str | None = None,
                  ingest_capacity: int | None = None,
                  overrun_rate: float = 0.0) -> list[NodeSpec]:
    """A mixed fleet: architectures and access modes round-robin,
    seeds derived per node, one shared fault-plan template whose seed
    is re-derived per node (so every node faults differently but the
    whole fleet replays deterministically)."""
    if archs is None:
        archs = tuple(available())
    nodes = []
    for i in range(count):
        plan = faults
        if plan is not None and "seed=" not in plan:
            plan = f"seed={seed + i},{plan}" if plan else f"seed={seed + i}"
        nodes.append(NodeSpec(
            name=f"node{i:03d}",
            arch=archs[i % len(archs)],
            seed=seed + i,
            access_mode=access_modes[i % len(access_modes)],
            faults=plan,
            ingest_capacity=ingest_capacity,
            overrun_rate=overrun_rate))
    return nodes


@dataclass
class FleetReport:
    """Everything a soak test asserts on."""

    reports: dict[str, AgentReport] = field(default_factory=dict)
    rollup: dict = field(default_factory=dict)
    ingested: dict[str, int] = field(default_factory=dict)

    @property
    def total_emitted(self) -> int:
        return sum(lane.emitted for r in self.reports.values()
                   for lane in r.lanes)

    @property
    def total_dropped(self) -> int:
        return sum(lane.dropped for r in self.reports.values()
                   for lane in r.lanes)

    def inconsistencies(self) -> list[str]:
        """Every accounting violation in the run (must be empty):
        per-lane ``offered == emitted + dropped``, per-node ``offered
        == produced``, and pipeline ``ingested == emitted`` for the
        aggregator lane."""
        out: list[str] = []
        for node, report in self.reports.items():
            out.extend(report.inconsistencies())
            emitted = sum(lane.emitted for lane in report.lanes
                          if lane.sink == "aggregator")
            ingested = self.ingested.get(node, 0)
            if emitted != ingested:
                out.append(f"{node}: aggregator ingested {ingested} != "
                           f"lane emitted {emitted}")
        return out


class FleetSimulator:
    """Run a whole fleet's agents against one aggregation pipeline."""

    def __init__(self, nodes: list[NodeSpec], groups: tuple[str, ...],
                 *, cpus_per_node: int = 2, window: float = 0.1,
                 rotations: int = 1,
                 aggregator: Aggregator | None = None):
        if not nodes:
            raise ValueError("fleet needs at least one node")
        self.nodes = list(nodes)
        self.groups = tuple(groups)
        self.cpus_per_node = cpus_per_node
        self.window = window
        self.rotations = rotations
        self.aggregator = aggregator if aggregator is not None \
            else Aggregator()

    def node_groups(self, spec: NodeSpec, machine) -> tuple[str, ...]:
        """The requested rotation restricted to groups this node's
        architecture provides (a mixed fleet monitors what each node
        can measure; event lists are per-family)."""
        from repro.core.perfctr.groups import groups_for
        provided = groups_for(machine.spec)
        groups = tuple(g for g in self.groups if g in provided)
        if not groups:
            raise ValueError(
                f"{spec.name} ({spec.arch}) supports none of "
                f"{', '.join(self.groups)}")
        return groups

    def build_agent(self, spec: NodeSpec) -> MonitorAgent:
        machine = create_machine(spec.arch)
        faults = FaultPlan.from_string(spec.faults) if spec.faults \
            else None
        backend = open_backend(spec.access_mode, machine, faults=faults)
        cpus = tuple(range(min(self.cpus_per_node,
                               machine.num_hwthreads)))
        config = AgentConfig(groups=self.node_groups(spec, machine),
                             cpus=cpus,
                             window=self.window,
                             rotations=self.rotations,
                             node=spec.name, seed=spec.seed)
        sink = AggregatorSink(self.aggregator,
                              max_batch=spec.ingest_capacity)
        workload = SyntheticLoad(machine, cpus, seed=spec.seed,
                                 overrun_rate=spec.overrun_rate)
        return MonitorAgent(machine, backend, config, sinks=(sink,),
                            workload=workload,
                            retry_policy=SOAK_RETRIES)

    def run(self) -> FleetReport:
        report = FleetReport()
        with _trace.span("agent.fleet", nodes=len(self.nodes),
                         groups=len(self.groups),
                         rotations=self.rotations):
            for spec in self.nodes:
                agent = self.build_agent(spec)
                report.reports[spec.name] = agent.run()
                report.ingested[spec.name] = \
                    self.aggregator.node_samples(spec.name)
                if _trace.TRACER.enabled:
                    _trace.incr("agent.fleet.nodes")
        report.rollup = self.aggregator.rollup()
        return report
