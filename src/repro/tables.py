"""ASCII table rendering in the style of likwid-perfctr output.

The paper's listings use bordered tables::

    +-----------------------+--------+--------+
    | Event                 | core 0 | core 1 |
    +-----------------------+--------+--------+
    | INSTR_RETIRED_ANY     | 313742 | 376154 |
    +-----------------------+--------+--------+

This module reproduces that format, plus the horizontal-rule banner
style used by likwid-topology.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

RULE = "-" * 61
STARS = "*" * 61


def render_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a bordered ASCII table.

    All cells are stringified; column widths fit the widest cell.  The
    header row is separated from the body by a border line, matching
    likwid-perfctr's output tables.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    cells = [list(header)] + str_rows
    ncols = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (ncols - len(r)))
    widths = [max(len(r[i]) for r in cells) for i in range(ncols)]
    border = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def fmt_row(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    lines = [border, fmt_row(cells[0]), border]
    for row in cells[1:]:
        lines.append(fmt_row(row))
    lines.append(border)
    return "\n".join(lines)


def banner(*lines: str) -> str:
    """likwid-topology style section banner bounded by '---' rules."""
    return "\n".join([RULE, *lines, RULE])


def star_banner(title: str) -> str:
    """likwid-topology style star banner used for major sections."""
    return "\n".join([STARS, title, STARS])
