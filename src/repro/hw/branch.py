"""Branch predictor models for the exact trace substrate.

The BRANCH group (paper §II.A table: "Branch prediction miss
rate/ratio") needs a source of misprediction counts.  On the analytic
path workloads declare a miss rate; on the exact path these predictor
models produce it from actual branch outcome streams:

* :class:`BimodalPredictor` — a table of 2-bit saturating counters
  indexed by branch address (the classic Smith predictor): loop-closing
  branches predict almost perfectly, alternating patterns almost never.
* :class:`GsharePredictor` — global history XOR-folded into the table
  index; captures correlated/periodic patterns the bimodal table
  cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PredictorStats:
    branches: int = 0
    mispredictions: int = 0

    @property
    def miss_ratio(self) -> float:
        return (self.mispredictions / self.branches
                if self.branches else 0.0)


class BimodalPredictor:
    """Per-address 2-bit saturating counters (00/01 -> not taken,
    10/11 -> taken)."""

    def __init__(self, entries: int = 1024):
        if entries < 1:
            raise ValueError("predictor needs at least one entry")
        self.entries = entries
        self._table = [2] * entries   # weakly taken, the usual reset
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record one executed branch; returns True on misprediction."""
        index = self._index(pc)
        predicted = self._table[index] >= 2
        mispredicted = predicted != taken
        self.stats.branches += 1
        if mispredicted:
            self.stats.mispredictions += 1
        counter = self._table[index]
        self._table[index] = min(3, counter + 1) if taken \
            else max(0, counter - 1)
        return mispredicted


class GsharePredictor(BimodalPredictor):
    """Bimodal table indexed by PC xor global branch history."""

    def __init__(self, entries: int = 1024, history_bits: int = 8):
        super().__init__(entries)
        self.history_bits = history_bits
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def update(self, pc: int, taken: bool) -> bool:
        mispredicted = super().update(pc, taken)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask
        return mispredicted


@dataclass
class BranchUnit:
    """The front-end branch unit of one simulated core: feeds the
    BRANCHES / BRANCH_MISSES channels from outcome streams."""

    predictor: BimodalPredictor = field(default_factory=GsharePredictor)

    def execute(self, pc: int, taken: bool) -> bool:
        return self.predictor.update(pc, taken)

    @property
    def stats(self) -> PredictorStats:
        return self.predictor.stats
