"""Hardware prefetcher models (the units likwid-features toggles).

The paper (§II.D): "Intel processors not only have a prefetcher for
main memory; several prefetchers are responsible for moving data
between cache levels."  The four Core 2 prefetchers controllable
through IA32_MISC_ENABLE are modelled:

* **HW_PREFETCHER** — the L2 streamer: detects sequential cache-line
  streams at L2 and runs ahead fetching upcoming lines into L2.
* **CL_PREFETCHER** — adjacent cache line prefetch: every L2 fill also
  fetches the 128-byte buddy line.
* **DCU_PREFETCHER** — L1 streaming prefetcher: on ascending accesses
  fetches the next line into L1.
* **IP_PREFETCHER** — per-instruction-pointer stride prefetcher: learns
  a constant stride per access stream and fetches ahead into L1.

Each model decides *which line addresses to prefetch*; the cache
hierarchy performs the fills so prefetch traffic shows up in the
counter channels, making toggling observable in likwid-perfctr
measurements — the end-to-end behaviour the tool exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StreamDetector:
    """Sequential-stream detector shared by the streamer prefetchers."""

    depth: int = 2           # lines fetched ahead once a stream is confirmed
    confirm: int = 2         # consecutive +1 line steps needed
    _last_line: int | None = None
    _run: int = 0

    def observe(self, line: int) -> list[int]:
        """Feed one accessed line; return lines to prefetch."""
        out: list[int] = []
        if self._last_line is not None and line == self._last_line + 1:
            self._run += 1
            if self._run >= self.confirm:
                out = [line + k for k in range(1, self.depth + 1)]
        elif line != self._last_line:
            self._run = 0
        self._last_line = line
        return out


@dataclass
class IpStridePrefetcher:
    """Per-stream constant-stride detector (the IP prefetcher).

    Real hardware keys its table by instruction pointer; workloads here
    tag each logical access stream with an integer id instead, which is
    the same information.
    """

    max_streams: int = 16
    _table: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    # stream id -> (last_addr, last_stride, confirmations)

    def observe(self, stream: int, addr: int, line_size: int) -> list[int]:
        last = self._table.get(stream)
        if last is None:
            if len(self._table) >= self.max_streams:
                self._table.pop(next(iter(self._table)))
            self._table[stream] = (addr, 0, 0)
            return []
        last_addr, last_stride, hits = last
        stride = addr - last_addr
        if stride != 0 and stride == last_stride:
            hits += 1
        else:
            hits = 0
        self._table[stream] = (addr, stride, hits)
        if hits >= 2 and stride != 0:
            target = addr + stride
            if target // line_size != addr // line_size:
                return [target // line_size]
        return []


@dataclass
class PrefetcherConfig:
    """Enabled-state of the four prefetchers (from IA32_MISC_ENABLE)."""

    hw_prefetcher: bool = True    # L2 streamer
    cl_prefetcher: bool = True    # adjacent line
    dcu_prefetcher: bool = True   # L1 streamer
    ip_prefetcher: bool = True    # L1 stride

    @classmethod
    def from_machine(cls, machine, hwthread: int) -> "PrefetcherConfig":
        state = machine.prefetchers_enabled(hwthread)
        return cls(hw_prefetcher=state["HW_PREFETCHER"],
                   cl_prefetcher=state["CL_PREFETCHER"],
                   dcu_prefetcher=state["DCU_PREFETCHER"],
                   ip_prefetcher=state["IP_PREFETCHER"])

    @classmethod
    def all_off(cls) -> "PrefetcherConfig":
        return cls(False, False, False, False)
