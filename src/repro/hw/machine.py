"""SimMachine: a fully wired simulated shared-memory node.

Instantiating a :class:`SimMachine` from an :class:`~repro.hw.spec.ArchSpec`
creates, per hardware thread, an MSR register file with the PMU's
counter registers (plus ``IA32_MISC_ENABLE`` on Core 2 for
likwid-features, and the TSC), one core PMU per hardware thread, one
shared uncore PMU per socket on architectures that have one, and a
CPUID responder.  This is the hardware the OS layer
(:mod:`repro.oskern`) and the LIKWID tools run against.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.hw import registers as regs
from repro.hw.cpuid import CpuidEngine, CpuidResult
from repro.hw.events import Channel
from repro.hw.msr import MSRSpace
from repro.hw.pmu import CorePMU, UncorePMU
from repro.hw.spec import ArchSpec


def default_misc_enable() -> int:
    """Power-on value of IA32_MISC_ENABLE matching the paper's
    likwid-features listing: all prefetchers on, BTS/PEBS supported,
    SpeedStep/thermal control/perfmon/monitor enabled, IDA off."""
    value = 0
    enabled_plain = {"FAST_STRINGS", "TM1", "PERFMON", "SPEEDSTEP",
                     "MONITOR", "XD_BIT"}
    for bit in regs.MISC_ENABLE_BITS:
        if bit.invert:
            # Inverted bits: set means disabled/unavailable.  Only IDA
            # starts disabled; prefetchers and BTS/PEBS start available.
            if bit.key == "IDA":
                value |= 1 << bit.bit
        elif bit.key in enabled_plain:
            value |= 1 << bit.bit
    return value


class SimMachine:
    """One simulated multicore/multisocket node."""

    def __init__(self, spec: ArchSpec):
        self.spec = spec
        self._cpuid = CpuidEngine(spec)
        self._counter_addresses: frozenset[int] | None = None
        # Scheduler-tick observers: called after every apply_counts
        # slice with the elapsed wall time.  The perf_event-style
        # access backend registers its rotation/multiplexing timer
        # here; the list is empty otherwise, costing nothing.
        self._tick_hooks: list = []
        self.msr: list[MSRSpace] = []
        self.core_pmus: list[CorePMU] = []
        self.uncore_pmus: list[UncorePMU] = [
            UncorePMU(s, spec.pmu, spec.events)
            for s in range(spec.sockets)
        ] if spec.pmu.has_uncore else []

        misc_reset = default_misc_enable()
        misc_write_mask = 0
        for bit in regs.MISC_ENABLE_BITS:
            if bit.writable:
                misc_write_mask |= 1 << bit.bit

        for hwthread in range(spec.num_hwthreads):
            space = MSRSpace(hwthread)
            space.declare(regs.IA32_TSC, name="TSC")
            if spec.has_misc_enable:
                space.declare(regs.IA32_MISC_ENABLE, reset=misc_reset,
                              write_mask=misc_write_mask, name="MISC_ENABLE")
            pmu = CorePMU(hwthread, space, spec.pmu, spec.events)
            if self.uncore_pmus:
                self.uncore_pmus[spec.socket_of(hwthread)].attach(space)
            self.msr.append(space)
            self.core_pmus.append(pmu)

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_hwthreads(self) -> int:
        return self.spec.num_hwthreads

    @property
    def counter_width(self) -> int:
        """Bits of the PMU counters before wrap-around (48 on every
        simulated architecture, like the real hardware)."""
        return self.spec.pmu.counter_width

    def counter_addresses(self) -> frozenset[int]:
        """MSR addresses of all counter-class registers: core PMCs,
        Intel fixed counters, and the socket-scope uncore counters.

        These are the registers whose contents accumulate and wrap at
        the counter width; config/control registers are excluded.  The
        fault-injecting msr driver uses this set to recognise counter
        writes (forced-overflow preloading)."""
        if self._counter_addresses is None:
            pmu = self.spec.pmu
            addrs = {pmu.pmc_address(i) for i in range(pmu.num_pmcs)}
            if pmu.has_fixed:
                addrs.update(regs.IA32_FIXED_CTR0 + i for i in range(3))
            for i in range(pmu.num_uncore_pmcs):
                addrs.add(regs.MSR_UNCORE_PMC0 + i)
            if pmu.has_uncore_fixed:
                addrs.add(regs.MSR_UNCORE_FIXED_CTR0)
            self._counter_addresses = frozenset(addrs)
        return self._counter_addresses

    # -- instruction-level interfaces -----------------------------------------

    def cpuid(self, hwthread: int, leaf: int, subleaf: int = 0) -> CpuidResult:
        """Execute the CPUID instruction on a hardware thread."""
        return self._cpuid.cpuid(hwthread, leaf, subleaf)

    def rdmsr(self, hwthread: int, address: int) -> int:
        return self.msr[hwthread].read(address)

    def wrmsr(self, hwthread: int, address: int, value: int) -> None:
        self.msr[hwthread].write(address, value)

    # -- execution feedback ----------------------------------------------------

    def apply_counts(self,
                     core_counts: Mapping[int, Mapping[Channel, float]],
                     uncore_counts: Mapping[int, Mapping[Channel, float]]
                     | None = None,
                     elapsed_seconds: float = 0.0) -> None:
        """Feed one execution slice's event production into the PMUs.

        *core_counts* maps hardware-thread id → channel counts;
        *uncore_counts* maps socket id → socket-scope channel counts.
        The TSC of every thread always advances with wall-clock time
        (it is invariant and never halts)."""
        for hwthread, channels in core_counts.items():
            self.core_pmus[hwthread].apply(channels)
        if uncore_counts:
            if not self.uncore_pmus:
                raise ValueError(
                    f"{self.name} has no uncore PMU but uncore counts given")
            for socket, channels in uncore_counts.items():
                self.uncore_pmus[socket].apply(channels)
        if elapsed_seconds:
            ticks = int(elapsed_seconds * self.spec.clock_hz)
            for space in self.msr:
                space.poke(regs.IA32_TSC,
                           space.peek(regs.IA32_TSC) + ticks)
        for hook in list(self._tick_hooks):
            hook(elapsed_seconds)

    def add_tick_hook(self, hook) -> None:
        """Register a callable invoked as ``hook(elapsed_seconds)``
        after every :meth:`apply_counts` slice."""
        self._tick_hooks.append(hook)

    def remove_tick_hook(self, hook) -> None:
        if hook in self._tick_hooks:
            self._tick_hooks.remove(hook)

    # -- feature state queried by the cache/prefetch models ---------------------

    def misc_enable_state(self, hwthread: int, key: str) -> bool:
        """Current enabled/disabled state of a MISC_ENABLE feature."""
        if not self.spec.has_misc_enable:
            # Architectures without the register behave as if every
            # prefetcher is enabled and features are fixed.
            return True
        bit = regs.MISC_ENABLE_BY_KEY[key]
        raw = bool(self.msr[hwthread].peek(regs.IA32_MISC_ENABLE)
                   & (1 << bit.bit))
        return (not raw) if bit.invert else raw

    def prefetchers_enabled(self, hwthread: int) -> dict[str, bool]:
        """State of all four prefetchers for one hardware thread."""
        return {key: self.misc_enable_state(hwthread, key)
                for key in regs.PREFETCHER_KEYS}
