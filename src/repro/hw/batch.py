"""Batched trace execution: whole address arrays per call.

The scalar :class:`~repro.hw.cache.CacheHierarchy` pays roughly ten
Python calls per access (runner dispatch, TLB, per-level probe,
prefetcher observers).  For the figure sweeps and the ablation
benchmarks that cost dominates wall-clock and caps trace sizes.  This
module keeps the *model* identical — same true-LRU sets, same fill
and writeback policy, same prefetcher state machines — but executes a
whole :class:`TraceArrays` in one tight loop with every piece of hot
state held in locals.  The result is bit-exact with the scalar path
(enforced by ``tests/hw/test_batch.py``) at a multiple of its speed.

Layout of a batched trace: three parallel arrays ``ops`` (one byte per
access: load/store/NT-store/branch), ``addrs`` and ``streams``
(64-bit).  :func:`encode_trace` builds them from any scalar
``(op, address, stream)`` iterable; generators in
:mod:`repro.workloads.kernels` can be captured once and replayed many
times (see :mod:`repro.workloads.trace_cache`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import trace as _trace
from repro.hw.cache import CacheHierarchy, SetAssocCache

OP_LOAD = 0
OP_STORE = 1
OP_NT_STORE = 2
OP_BRANCH = 3

_OP_CODES = {"L": OP_LOAD, "S": OP_STORE, "N": OP_NT_STORE, "B": OP_BRANCH}
_OP_CHARS = ("L", "S", "N", "B")


@dataclass(frozen=True)
class TraceArrays:
    """A compact, replayable access trace (struct-of-arrays form)."""

    ops: array       # typecode 'B': OP_LOAD/OP_STORE/OP_NT_STORE/OP_BRANCH
    addrs: array     # typecode 'q': byte address (or branch PC)
    streams: array   # typecode 'q': stream id (or branch outcome)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[tuple[str, int, int]]:
        """Yield the scalar ``(op, address, stream)`` view, so a
        captured trace can also feed the scalar engine unchanged."""
        chars = _OP_CHARS
        for op, addr, stream in zip(self.ops, self.addrs, self.streams):
            yield (chars[op], addr, stream)

    @property
    def nbytes(self) -> int:
        return (self.ops.itemsize * len(self.ops)
                + self.addrs.itemsize * len(self.addrs)
                + self.streams.itemsize * len(self.streams))


def encode_trace(trace: Iterable[tuple[str, int, int]]) -> TraceArrays:
    """Capture a scalar trace iterable into :class:`TraceArrays`."""
    if isinstance(trace, TraceArrays):
        return trace
    tracer = _trace.TRACER
    if not tracer.enabled:
        return _encode(trace)
    with tracer.span("batch.encode"):
        arrays = _encode(trace)
    tracer.metrics.incr("batch.encode.accesses", len(arrays))
    return arrays


def _encode(trace: Iterable[tuple[str, int, int]]) -> TraceArrays:
    ops = array("B")
    addrs = array("q")
    streams = array("q")
    codes = _OP_CODES
    for op, addr, stream in trace:
        try:
            ops.append(codes[op])
        except KeyError:
            raise ValueError(f"unknown trace op {op!r}") from None
        addrs.append(addr)
        streams.append(stream)
    return TraceArrays(ops, addrs, streams)


class BatchCache(SetAssocCache):
    """A :class:`SetAssocCache` whose internals the batched replay loop
    may index directly (the public ``sets`` alias).  Semantics and
    statistics are identical to the scalar cache — the batch engine
    only changes *who drives* the per-set dicts, not what they do."""

    def __init__(self, spec, name: str = ""):
        super().__init__(spec, name)
        self.sets = self._sets   # direct handle for the replay loop


class BatchHierarchy(CacheHierarchy):
    """Drop-in :class:`CacheHierarchy` with an array-at-a-time
    :meth:`replay` entry point.

    All scalar entry points (``load``/``store``/``channels``) remain
    available and interoperable: a replay may be followed by scalar
    accesses and vice versa, because both operate on the same state.
    """

    cache_factory = BatchCache

    def replay(self, trace: TraceArrays, branch_unit=None) -> float:
        """Execute a whole trace; returns accumulated model cycles
        (same per-access latency table as the scalar runner).

        Bit-exact with feeding the trace one access at a time through
        :meth:`load`/:meth:`store`: identical hit/miss/fill/eviction
        counts per level, DRAM traffic, TLB and prefetcher state.
        """
        if not isinstance(trace, TraceArrays):
            trace = encode_trace(trace)
        tracer = _trace.TRACER
        if not tracer.enabled:                      # the no-op fast path
            return self._replay(trace, branch_unit)
        with tracer.span("batch.replay", engine="batch",
                         accesses=len(trace)):
            cycles = self._replay(trace, branch_unit)
        tracer.metrics.incr("batch.replay.calls")
        tracer.metrics.incr("batch.replay.accesses", len(trace))
        return cycles

    def _replay(self, trace: TraceArrays, branch_unit=None) -> float:
        if not len(trace.ops):
            return 0.0

        levels = self.levels
        nlevels = len(levels)
        multi = nlevels > 1
        l1 = levels[0]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        line_size = self.line_size

        tlb = self.tlb
        pages = tlb._pages
        tlb_entries = tlb.entries
        page_size = tlb.page_size

        pf = self.prefetch
        dcu_on = pf.dcu_prefetcher
        ip_on = pf.ip_prefetcher
        hw_on = pf.hw_prefetcher and multi
        cl_on = pf.cl_prefetcher and multi

        # Prefetcher state machines, unpacked into locals.
        s1 = self._l1_stream
        s1_depth, s1_confirm = s1.depth, s1.confirm
        s1_last, s1_run = s1._last_line, s1._run
        s2 = self._l2_stream
        s2_depth, s2_confirm = s2.depth, s2.confirm
        s2_last, s2_run = s2._last_line, s2._run
        ip_table = self._ip._table
        ip_max = self._ip.max_streams

        prefetch_into = self._prefetch_into
        miss_rest = self._miss_rest
        branch_exec = branch_unit.execute if branch_unit is not None else None

        # Only irreducible counters live in the loop; everything
        # derivable (L1/TLB access totals, miss counts, hit cycles) is
        # reconstructed once at the end.
        loads = stores = nt_stores = 0
        tlb_miss = 0
        l1_hit = 0
        nt_accum = self._nt_accum
        cycles = 0.0          # branch + miss latencies; hits added at the end
        lat = (1.0, 8.0, 30.0, 200.0)
        nt_lat = lat[nlevels if nlevels < 3 else 3]

        # Vectorise the per-access address arithmetic; plain-int lists
        # iterate and hash faster than array('q') elements.
        try:
            import numpy as _np
        except ImportError:                               # pragma: no cover
            addrs_l = trace.addrs.tolist()
            lines_l = [a // line_size for a in addrs_l]
            pages_l = [a // page_size for a in addrs_l]
            has_branch = OP_BRANCH in trace.ops
        else:
            a = _np.frombuffer(trace.addrs, dtype=_np.int64)
            lines_l = (a // line_size).tolist()
            pages_l = (a // page_size).tolist()
            has_branch = bool(
                (_np.frombuffer(trace.ops, dtype=_np.uint8)
                 == OP_BRANCH).any())

        # The page made MRU by the previous access: a repeat access can
        # skip the TLB dict ops entirely (pop+reinsert of the MRU entry
        # is the identity, and the MRU entry is never the eviction
        # victim), so the skip is exact.
        prev_page = -1
        no_prefetch = not (dcu_on or ip_on or hw_on or cl_on)

        if no_prefetch and nlevels <= 2 and not has_branch:
            with _trace.span("batch.replay_fast", accesses=len(trace)):
                return self._replay_fast(trace, lines_l, pages_l)

        ops = trace.ops.tolist()
        addrs = trace.addrs.tolist()
        streams = trace.streams.tolist()

        for op, addr, stream, line, page in zip(ops, addrs, streams,
                                                lines_l, pages_l):
            if op == 3:                                   # branch
                if branch_exec is None:
                    raise ValueError(
                        "trace contains branch ops but no branch unit "
                        "was passed to replay()")
                cycles += 15.0 if branch_exec(addr, bool(stream)) else 1.0
                continue

            # TLB (fully associative LRU, inlined).
            if page != prev_page:
                if page in pages:
                    pages.pop(page)
                    pages[page] = None
                else:
                    tlb_miss += 1
                    if len(pages) >= tlb_entries:
                        pages.pop(next(iter(pages)))
                    pages[page] = None
                prev_page = page

            if op == 2:                                   # nontemporal store
                nt_stores += 1
                for cache in levels:
                    cache._sets[line % cache.num_sets].pop(line, None)
                nt_accum += 8
                if nt_accum >= line_size:
                    nt_accum -= line_size
                    self.dram_writes += 1
                continue

            write = op == 1
            if write:
                stores += 1
            else:
                loads += 1

            # L1 probe, inlined (the dominant path).
            s = l1_sets[line % l1_nsets]
            if line in s:
                l1_hit += 1
                hit_level = 0
                s[line] = s.pop(line) or write
                if no_prefetch:
                    continue
            else:
                hit_level = miss_rest(line, write)
                cycles += lat[hit_level if hit_level < 3 else 3]
                if no_prefetch:
                    continue

            # Prefetchers observe demand traffic (same order as scalar).
            if dcu_on and not write:
                if s1_last is not None and line == s1_last + 1:
                    s1_run += 1
                    if s1_run >= s1_confirm:
                        prefetch_into(
                            [line + k for k in range(1, s1_depth + 1)], 0)
                elif line != s1_last:
                    s1_run = 0
                s1_last = line
            if ip_on:
                last = ip_table.get(stream)
                if last is None:
                    if len(ip_table) >= ip_max:
                        ip_table.pop(next(iter(ip_table)))
                    ip_table[stream] = (addr, 0, 0)
                else:
                    last_addr, last_stride, hits = last
                    stride = addr - last_addr
                    if stride != 0 and stride == last_stride:
                        hits += 1
                    else:
                        hits = 0
                    ip_table[stream] = (addr, stride, hits)
                    if hits >= 2 and stride != 0:
                        target = addr + stride
                        if target // line_size != line:
                            prefetch_into([target // line_size], 0)
            if hit_level and multi:
                if hw_on:
                    if s2_last is not None and line == s2_last + 1:
                        s2_run += 1
                        if s2_run >= s2_confirm:
                            prefetch_into(
                                [line + k for k in range(1, s2_depth + 1)], 1)
                    elif line != s2_last:
                        s2_run = 0
                    s2_last = line
                if cl_on and hit_level >= 2:
                    prefetch_into([line ^ 1], 1)

        # Fold the local counters back into the shared state, and
        # reconstruct everything derivable from them.
        demand = loads + stores
        st = l1.stats
        st.accesses += demand
        st.hits += l1_hit
        st.misses += demand - l1_hit
        tlb.accesses += demand + nt_stores
        tlb.misses += tlb_miss
        self.loads += loads
        self.stores += stores
        self.nt_stores += nt_stores
        self._nt_accum = nt_accum
        s1._last_line, s1._run = s1_last, s1_run
        s2._last_line, s2._run = s2_last, s2_run
        # L1 hits cost 1.0 cycle each, NT stores a constant bypass
        # latency; both fold in exactly (integer-valued floats).
        return cycles + l1_hit * 1.0 + nt_stores * nt_lat

    def _replay_fast(self, trace: TraceArrays, lines_l: list,
                     pages_l: list) -> float:
        """Fully inlined replay for the common measurement shape: every
        prefetcher off, no branch ops, at most two cache levels (the
        ablation benchmarks' configuration).  The entire miss path —
        outer-level probe, fills, victim writebacks — runs inside the
        loop with counters in plain locals, folded back once at the
        end.  Bit-exact with the general loop and the scalar engine.
        """
        levels = self.levels
        multi = len(levels) > 1
        l1 = levels[0]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        l1_ways = l1.ways
        if multi:
            l2 = levels[1]
            l2_sets = l2._sets
            l2_nsets = l2.num_sets
            l2_ways = l2.ways
        line_size = self.line_size

        tlb = self.tlb
        pages = tlb._pages
        tlb_entries = tlb.entries

        loads = stores = nt_stores = 0
        tlb_miss = 0
        l1_hit = l2_hit = 0
        l1_ev = l1_dev = l1_in = 0
        l2_ev = l2_dev = l2_in = 0
        dram_w = 0
        nt_accum = self._nt_accum
        prev_page = -1

        for op, line, page in zip(trace.ops.tolist(), lines_l, pages_l):
            # TLB (fully associative LRU; MRU repeats skip exactly).
            if page != prev_page:
                if page in pages:
                    pages.pop(page)
                    pages[page] = None
                else:
                    tlb_miss += 1
                    if len(pages) >= tlb_entries:
                        pages.pop(next(iter(pages)))
                    pages[page] = None
                prev_page = page

            if op == 2:                                   # nontemporal store
                nt_stores += 1
                l1_sets[line % l1_nsets].pop(line, None)
                if multi:
                    l2_sets[line % l2_nsets].pop(line, None)
                nt_accum += 8
                if nt_accum >= line_size:
                    nt_accum -= line_size
                    dram_w += 1
                continue

            write = op == 1
            if write:
                stores += 1
            else:
                loads += 1

            s = l1_sets[line % l1_nsets]
            if line in s:
                l1_hit += 1
                s[line] = s.pop(line) or write
                continue

            # L1 miss: probe/fill L2 first, then fill L1 — the same
            # dict-mutation order as the scalar fill chain.
            if multi:
                s2 = l2_sets[line % l2_nsets]
                if line in s2:
                    l2_hit += 1
                    s2[line] = s2.pop(line)
                else:
                    if len(s2) >= l2_ways:
                        l2_ev += 1
                        if s2.pop(next(iter(s2))):
                            l2_dev += 1
                            dram_w += 1
                    s2[line] = False
                    l2_in += 1
            if len(s) >= l1_ways:
                victim = next(iter(s))
                l1_ev += 1
                if s.pop(victim):
                    l1_dev += 1
                    if multi:
                        t2 = l2_sets[victim % l2_nsets]
                        if victim in t2:
                            t2.pop(victim)
                            t2[victim] = True
                        else:
                            if len(t2) >= l2_ways:
                                l2_ev += 1
                                if t2.pop(next(iter(t2))):
                                    l2_dev += 1
                                    dram_w += 1
                            t2[victim] = True
                            l2_in += 1
                    else:
                        dram_w += 1
            s[line] = write
            l1_in += 1

        # Fold local counters back; derive the rest (L2 demand accesses
        # equal L1 misses, DRAM reads equal last-level misses, and the
        # latency sum decomposes per service level — all integer-valued
        # floats, so the sums are order-independent and exact).
        demand = loads + stores
        l1_miss = demand - l1_hit
        st = l1.stats
        st.accesses += demand
        st.hits += l1_hit
        st.misses += l1_miss
        st.evictions += l1_ev
        st.dirty_evictions += l1_dev
        st.lines_in += l1_in
        if multi:
            l2_miss = l1_miss - l2_hit
            st2 = l2.stats
            st2.accesses += l1_miss
            st2.hits += l2_hit
            st2.misses += l2_miss
            st2.evictions += l2_ev
            st2.dirty_evictions += l2_dev
            st2.lines_in += l2_in
            self.dram_reads += l2_miss
            miss_cycles = l2_hit * 8.0 + l2_miss * 30.0
            nt_lat = 30.0
        else:
            self.dram_reads += l1_miss
            miss_cycles = l1_miss * 8.0
            nt_lat = 8.0
        self.dram_writes += dram_w
        tlb.accesses += demand + nt_stores
        tlb.misses += tlb_miss
        self.loads += loads
        self.stores += stores
        self.nt_stores += nt_stores
        self._nt_accum = nt_accum
        return miss_cycles + l1_hit * 1.0 + nt_stores * nt_lat

    def _miss_rest(self, line: int, write: bool) -> int:
        """Slow path for an access that missed L1: probe the outer
        levels (registering demand stats exactly like the scalar
        ``_miss_level``), count a DRAM read on a full miss, and run the
        fill chain."""
        levels = self.levels
        nlevels = len(levels)
        hit_level = nlevels
        for i in range(1, nlevels):
            c = levels[i]
            st = c.stats
            st.accesses += 1
            s = c._sets[line % c.num_sets]
            if line in s:
                st.hits += 1
                s[line] = s.pop(line)
                hit_level = i
                break
            st.misses += 1
        if hit_level == nlevels:
            self.dram_reads += 1
        self._fill_chain(line, hit_level - 1, dirty=write)
        return hit_level

    # -- iterative, direct-dict re-implementations of the hierarchy
    # -- helpers (bit-exact with the scalar versions; enforced by the
    # -- differential tests) -------------------------------------------------

    def _fill_chain(self, line: int, upto: int, *, dirty: bool = False,
                    prefetch: bool = False) -> None:
        levels = self.levels
        for i in range(upto, -1, -1):
            c = levels[i]
            s = c._sets[line % c.num_sets]
            d = dirty and i == 0
            if line in s:
                s[line] = s.pop(line) or d
                continue
            st = c.stats
            if len(s) >= c.ways:
                victim_line = next(iter(s))
                victim_dirty = s.pop(victim_line)
                st.evictions += 1
                if victim_dirty:
                    st.dirty_evictions += 1
                    self._writeback((victim_line, True), from_level=i)
            s[line] = d
            st.lines_in += 1
            if prefetch:
                st.prefetch_fills += 1

    def _writeback(self, victim, from_level: int) -> None:
        line, dirty = victim
        if not dirty:
            return
        levels = self.levels
        nlevels = len(levels)
        i = from_level + 1
        while True:
            if i >= nlevels:
                self.dram_writes += 1
                return
            c = levels[i]
            s = c._sets[line % c.num_sets]
            if line in s:
                s.pop(line)
                s[line] = True
                return
            st = c.stats
            cascade = None
            if len(s) >= c.ways:
                victim_line = next(iter(s))
                victim_dirty = s.pop(victim_line)
                st.evictions += 1
                if victim_dirty:
                    st.dirty_evictions += 1
                    cascade = victim_line
            s[line] = True
            st.lines_in += 1
            if cascade is None:
                return
            line = cascade
            i += 1

    def _prefetch_into(self, lines, upto: int) -> None:
        levels = self.levels
        nlevels = len(levels)
        l1 = levels[0]
        l1_sets = l1._sets
        l1_nsets = l1.num_sets
        for line in lines:
            if line in l1_sets[line % l1_nsets]:
                continue
            hit_level = nlevels
            for i in range(upto + 1, nlevels):
                c = levels[i]
                s = c._sets[line % c.num_sets]
                if line in s:
                    s[line] = s.pop(line)
                    hit_level = i
                    break
            if hit_level == nlevels:
                self.dram_reads += 1
            self._fill_chain(line, upto, prefetch=True)
