"""Trace-driven set-associative cache hierarchy simulator.

The exact execution substrate: workloads issue individual loads and
stores and the hierarchy tracks line state with true LRU per set,
write-allocate on store misses, nontemporal-store bypass, and the
prefetchers of :mod:`repro.hw.prefetch`.  Its statistics convert
directly into the PMU's event channels, so likwid-perfctr measurements
over a traced kernel are exact.

Large workloads (the paper's 75 GB Jacobi runs) use the analytic model
in :mod:`repro.model` instead; the ablation benchmark
``benchmarks/test_bench_ablation_cachemodel.py`` checks the two
substrates agree on miss counts for streaming/strided/blocked kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.events import Channel
from repro.hw.prefetch import IpStridePrefetcher, PrefetcherConfig, StreamDetector
from repro.hw.spec import CacheSpec


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    lines_in: int = 0          # fills (demand + prefetch)
    prefetch_fills: int = 0
    evictions: int = 0         # lines victimised (clean + dirty)
    dirty_evictions: int = 0   # writebacks to the next level

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """One set-associative, true-LRU cache level."""

    def __init__(self, spec: CacheSpec, name: str = ""):
        self.spec = spec
        self.name = name or f"L{spec.level}"
        self.num_sets = spec.sets
        self.ways = spec.associativity
        self.line_size = spec.line_size
        # Per set: {line_number: dirty}; dict preserves insertion order,
        # and we re-insert on touch, giving true LRU with O(1) ops.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int, *, touch: bool = True) -> bool:
        """Probe for a line; on a hit optionally refresh its LRU age."""
        s = self._sets[self._set_index(line)]
        if line not in s:
            return False
        if touch:
            dirty = s.pop(line)
            s[line] = dirty
        return True

    def access(self, line: int, *, write: bool = False) -> bool:
        """Demand access to a line; returns True on hit.  Misses do NOT
        fill — the hierarchy decides fill policy (allocate vs bypass)."""
        self.stats.accesses += 1
        s = self._sets[self._set_index(line)]
        if line in s:
            self.stats.hits += 1
            dirty = s.pop(line) or write
            s[line] = dirty
            return True
        self.stats.misses += 1
        return False

    def fill(self, line: int, *, dirty: bool = False,
             prefetch: bool = False) -> tuple[int, bool] | None:
        """Install a line, evicting LRU if the set is full.

        Returns (victim_line, victim_dirty) when a line was evicted.
        """
        s = self._sets[self._set_index(line)]
        if line in s:
            s[line] = s.pop(line) or dirty
            return None
        victim: tuple[int, bool] | None = None
        if len(s) >= self.ways:
            victim_line = next(iter(s))
            victim = (victim_line, s.pop(victim_line))
            self.stats.evictions += 1
            if victim[1]:
                self.stats.dirty_evictions += 1
        s[line] = dirty
        self.stats.lines_in += 1
        if prefetch:
            self.stats.prefetch_fills += 1
        return victim

    def invalidate(self, line: int) -> bool:
        """Drop a line (used by nontemporal stores); True if present."""
        s = self._sets[self._set_index(line)]
        return s.pop(line, None) is not None

    def has_line(self, line: int) -> bool:
        """O(1) membership probe restricted to the line's mapped set.

        Unlike :meth:`contents`, which walks every set (O(sets·ways)),
        this only consults the one set the line can live in and never
        touches LRU state — the right primitive for coherence probes.
        """
        return line in self._sets[self._set_index(line)]

    __contains__ = has_line

    def contents(self) -> set[int]:
        """All resident line numbers (testing/inspection only — this
        scans every set; use :meth:`has_line` for membership checks)."""
        return {line for s in self._sets for line in s}


class SimTlb:
    """Fully associative, true-LRU data TLB."""

    def __init__(self, entries: int = 64, page_size: int = 4096):
        self.entries = entries
        self.page_size = page_size
        self._pages: dict[int, None] = {}
        self.accesses = 0
        self.misses = 0

    def translate(self, addr: int) -> bool:
        """Look up the page of *addr*; returns True on a TLB hit."""
        self.accesses += 1
        page = addr // self.page_size
        if page in self._pages:
            self._pages.pop(page)
            self._pages[page] = None
            return True
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(next(iter(self._pages)))
        self._pages[page] = None
        return False


class CacheHierarchy:
    """A private L1/L2[/L3] stack for one hardware thread plus DRAM,
    fronted by a data TLB.

    Fill policy is inclusive-on-fill: a demand miss that reaches DRAM
    installs the line in every level on the way back (matching the
    inclusive Intel hierarchies of the paper's machines; the exclusive
    AMD policy is approximated the same way, documented in DESIGN.md).
    """

    #: Cache class used for each level; :class:`repro.hw.batch.BatchHierarchy`
    #: overrides this to build batch-friendly levels.
    cache_factory = SetAssocCache

    def __init__(self, caches: list[CacheSpec],
                 prefetch: PrefetcherConfig | None = None,
                 *, tlb_entries: int = 64, page_size: int = 4096):
        data_levels = sorted((c for c in caches if c.is_data),
                             key=lambda c: c.level)
        if not data_levels:
            raise ValueError("hierarchy needs at least one data cache level")
        self.levels = [self.cache_factory(c) for c in data_levels]
        self.line_size = self.levels[0].line_size
        self.tlb = SimTlb(tlb_entries, page_size)
        self.prefetch = prefetch or PrefetcherConfig()
        self._l1_stream = StreamDetector(depth=1)    # DCU prefetcher
        self._l2_stream = StreamDetector(depth=2)    # HW (L2 streamer)
        self._ip = IpStridePrefetcher()
        self.loads = 0
        self.stores = 0
        self.nt_stores = 0
        self.dram_reads = 0    # lines fetched from memory
        self.dram_writes = 0   # dirty writebacks + NT store lines
        self._nt_accum = 0     # bytes pending in write-combining buffers

    # -- internals -------------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self.line_size

    def _fill_chain(self, line: int, upto: int, *, dirty: bool = False,
                    prefetch: bool = False) -> None:
        """Install *line* into levels[0..upto], cascading evictions.

        A dirty victim at level i is written into level i+1 (or DRAM
        from the last level); clean victims simply vanish.
        """
        for i in range(upto, -1, -1):
            victim = self.levels[i].fill(line, dirty=dirty and i == 0,
                                         prefetch=prefetch)
            if victim is not None:
                self._writeback(victim, from_level=i)

    def _writeback(self, victim: tuple[int, bool], from_level: int) -> None:
        line, dirty = victim
        if not dirty:
            return
        nxt = from_level + 1
        if nxt >= len(self.levels):
            self.dram_writes += 1
            return
        if self.levels[nxt].lookup(line, touch=False):
            # Mark dirty in the outer level.
            self.levels[nxt].fill(line, dirty=True)
        else:
            wb_victim = self.levels[nxt].fill(line, dirty=True)
            if wb_victim is not None:
                self._writeback(wb_victim, from_level=nxt)

    def _miss_level(self, line: int) -> int:
        """First level where the line hits, or len(levels) for DRAM.
        Registers a demand access at each missing level."""
        for i, cache in enumerate(self.levels):
            if cache.access(line):
                return i
        return len(self.levels)

    def _prefetch_into(self, lines: list[int], upto: int) -> None:
        for line in lines:
            if not self.levels[0].lookup(line, touch=False):
                # Prefetch fills travel the same path as demand fills.
                hit_level = len(self.levels)
                for i in range(upto + 1, len(self.levels)):
                    if self.levels[i].lookup(line):
                        hit_level = i
                        break
                if hit_level == len(self.levels):
                    self.dram_reads += 1
                self._fill_chain(line, upto, prefetch=True)

    # -- public access interface -------------------------------------------------

    def load(self, addr: int, *, stream: int = 0) -> int:
        """Execute one load; returns the level index that served it
        (len(levels) means DRAM)."""
        self.loads += 1
        return self._demand(addr, write=False, stream=stream)

    def store(self, addr: int, *, stream: int = 0,
              nontemporal: bool = False) -> int:
        """Execute one store.  Normal stores write-allocate; nontemporal
        stores bypass the hierarchy entirely (and invalidate any stale
        copy), saving the write-allocate read — the 1/3 traffic saving
        of the paper's Table II."""
        if nontemporal:
            self.nt_stores += 1
            self.tlb.translate(addr)
            line = self._line(addr)
            for cache in self.levels:
                cache.invalidate(line)
            # Write-combining buffers emit one line per line's worth of
            # stores; count fractional lines so any store pattern sums
            # correctly (a full line of 8 stores -> 1 line written).
            self._nt_accum += 8
            if self._nt_accum >= self.line_size:
                self._nt_accum -= self.line_size
                self.dram_writes += 1
            return len(self.levels)
        self.stores += 1
        return self._demand(addr, write=True, stream=stream)

    def _demand(self, addr: int, *, write: bool, stream: int) -> int:
        self.tlb.translate(addr)
        line = self._line(addr)
        hit_level = self._miss_level(line)
        if hit_level == len(self.levels):
            self.dram_reads += 1
        if hit_level > 0:
            self._fill_chain(line, hit_level - 1, dirty=write)
        elif write:
            self.levels[0].fill(line, dirty=True)
        # Prefetchers observe demand traffic and inject fills.
        if self.prefetch.dcu_prefetcher and not write:
            self._prefetch_into(self._l1_stream.observe(line), upto=0)
        if self.prefetch.ip_prefetcher:
            self._prefetch_into(self._ip.observe(stream, addr, self.line_size),
                                upto=0)
        if hit_level >= 1 and len(self.levels) > 1:
            if self.prefetch.hw_prefetcher:
                self._prefetch_into(self._l2_stream.observe(line), upto=1)
            if self.prefetch.cl_prefetcher and hit_level >= 2:
                self._prefetch_into([line ^ 1], upto=1)
        return hit_level

    # -- channel conversion ---------------------------------------------------------

    def channels(self) -> dict[Channel, float]:
        """Convert the trace statistics into PMU event channels."""
        l1 = self.levels[0]
        out: dict[Channel, float] = {
            Channel.LOADS: float(self.loads),
            Channel.STORES: float(self.stores),
            Channel.NT_STORES: float(self.nt_stores),
            Channel.L1D_REPLACEMENT: float(l1.stats.lines_in),
            Channel.L1D_EVICT: float(l1.stats.dirty_evictions),
            Channel.DRAM_READS: float(self.dram_reads),
            Channel.DRAM_WRITES: float(self.dram_writes),
            Channel.DTLB_MISSES: float(self.tlb.misses),
        }
        if len(self.levels) > 1:
            l2 = self.levels[1]
            out[Channel.L2_REQUESTS] = float(l2.stats.accesses)
            out[Channel.L2_MISSES] = float(l2.stats.misses)
            out[Channel.L2_LINES_IN] = float(l2.stats.lines_in)
            out[Channel.L2_LINES_OUT] = float(l2.stats.evictions)
        if len(self.levels) > 2:
            l3 = self.levels[2]
            out[Channel.L3_REQUESTS] = float(l3.stats.accesses)
            out[Channel.L3_MISSES] = float(l3.stats.misses)
            out[Channel.L3_LINES_IN] = float(l3.stats.lines_in)
            out[Channel.L3_LINES_OUT] = float(l3.stats.evictions)
        return out
