"""Model-specific register (MSR) addresses and bit-field layouts.

These are the registers likwid-perfctr and likwid-features program on
real hardware, with the addresses and field encodings taken from the
Intel SDM Vol. 3 / AMD BKDG.  The simulated machines define exactly
these registers so the tool layer performs the same address arithmetic
and bit twiddling as the original C code.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Architectural (Intel) performance monitoring registers
# --------------------------------------------------------------------------

IA32_PMC0 = 0x0C1            # general-purpose counter 0 (PMC1..3 follow)
IA32_PERFEVTSEL0 = 0x186     # event-select for PMC0 (PERFEVTSEL1..3 follow)
IA32_FIXED_CTR0 = 0x309      # INSTR_RETIRED_ANY
IA32_FIXED_CTR1 = 0x30A      # CPU_CLK_UNHALTED_CORE
IA32_FIXED_CTR2 = 0x30B      # CPU_CLK_UNHALTED_REF
IA32_FIXED_CTR_CTRL = 0x38D
IA32_PERF_GLOBAL_STATUS = 0x38E
IA32_PERF_GLOBAL_CTRL = 0x38F
IA32_PERF_GLOBAL_OVF_CTRL = 0x390
IA32_MISC_ENABLE = 0x1A0
IA32_PLATFORM_INFO = 0x0CE
IA32_TSC = 0x010

# Core-2 only prefetcher control lives in IA32_MISC_ENABLE; Nehalem moved
# the prefetcher bits to MSR 0x1A4 (not modelled by likwid 1.x, so the
# features tool restricts itself to Core 2, as the paper states).

# --------------------------------------------------------------------------
# Nehalem/Westmere uncore performance monitoring (socket scope)
# --------------------------------------------------------------------------

MSR_UNCORE_PERF_GLOBAL_CTRL = 0x391
MSR_UNCORE_PERF_GLOBAL_STATUS = 0x392
MSR_UNCORE_FIXED_CTR0 = 0x394       # UNC_CLK_UNHALTED
MSR_UNCORE_FIXED_CTR_CTRL = 0x395
MSR_UNCORE_PMC0 = 0x3B0             # UPMC0..7 follow
MSR_UNCORE_PERFEVTSEL0 = 0x3C0      # for UPMC0..7

NUM_UNCORE_PMC = 8

# --------------------------------------------------------------------------
# AMD K8/K10 performance monitoring
# --------------------------------------------------------------------------

AMD_PERFEVTSEL0 = 0xC0010000        # PERFEVTSEL0..3
AMD_PMC0 = 0xC0010004               # PMC0..3

# --------------------------------------------------------------------------
# PERFEVTSEL bit fields (architectural layout, shared by Intel and AMD
# for the low 32 bits that matter here)
# --------------------------------------------------------------------------

EVTSEL_EVENT_SHIFT = 0      # bits 0-7: event number
EVTSEL_EVENT_WIDTH = 8
EVTSEL_UMASK_SHIFT = 8      # bits 8-15: unit mask
EVTSEL_UMASK_WIDTH = 8
EVTSEL_USR = 1 << 16        # count user-mode
EVTSEL_OS = 1 << 17         # count kernel-mode
EVTSEL_EDGE = 1 << 18
EVTSEL_PC = 1 << 19
EVTSEL_INT = 1 << 20
EVTSEL_ANYTHREAD = 1 << 21
EVTSEL_EN = 1 << 22         # enable
EVTSEL_INV = 1 << 23
EVTSEL_CMASK_SHIFT = 24     # bits 24-31
EVTSEL_CMASK_WIDTH = 8

# Every bit the architectural PERFEVTSEL layout defines; bits outside
# this mask (32-63) are reserved and must never be written.
EVTSEL_WRITABLE_MASK = (
    ((1 << EVTSEL_EVENT_WIDTH) - 1) << EVTSEL_EVENT_SHIFT
    | ((1 << EVTSEL_UMASK_WIDTH) - 1) << EVTSEL_UMASK_SHIFT
    | EVTSEL_USR | EVTSEL_OS | EVTSEL_EDGE | EVTSEL_PC | EVTSEL_INT
    | EVTSEL_ANYTHREAD | EVTSEL_EN | EVTSEL_INV
    | ((1 << EVTSEL_CMASK_WIDTH) - 1) << EVTSEL_CMASK_SHIFT)

# Intel architectural fixed-function counters (FIXED_CTR0..2).
NUM_FIXED_CTRS = 3


def evtsel_compose_raw(event: int, umask: int, *, cmask: int = 0,
                       flags: int = 0) -> int:
    """Compose a PERFEVTSEL value *without* masking the fields.

    Unlike :func:`evtsel_encode` (which truncates silently, as the
    silicon would), this keeps oversized field values visible so
    static checks can detect encodings that do not fit the declared
    field widths or would touch reserved bits."""
    return (event << EVTSEL_EVENT_SHIFT
            | umask << EVTSEL_UMASK_SHIFT
            | cmask << EVTSEL_CMASK_SHIFT
            | flags)


def evtsel_reserved_bits(value: int) -> int:
    """The reserved bits a PERFEVTSEL value would touch (0 if none)."""
    return value & ~EVTSEL_WRITABLE_MASK


def evtsel_encode(event: int, umask: int, *, usr: bool = True, os: bool = True,
                  enable: bool = False, edge: bool = False, inv: bool = False,
                  anythread: bool = False, cmask: int = 0) -> int:
    """Compose a PERFEVTSEL value from its fields."""
    val = (event & 0xFF) | ((umask & 0xFF) << EVTSEL_UMASK_SHIFT)
    if usr:
        val |= EVTSEL_USR
    if os:
        val |= EVTSEL_OS
    if edge:
        val |= EVTSEL_EDGE
    if enable:
        val |= EVTSEL_EN
    if inv:
        val |= EVTSEL_INV
    if anythread:
        val |= EVTSEL_ANYTHREAD
    val |= (cmask & 0xFF) << EVTSEL_CMASK_SHIFT
    return val


def evtsel_event(value: int) -> int:
    """Extract the event-number field of a PERFEVTSEL value."""
    return value & 0xFF


def evtsel_umask(value: int) -> int:
    """Extract the unit-mask field of a PERFEVTSEL value."""
    return (value >> EVTSEL_UMASK_SHIFT) & 0xFF


def evtsel_enabled(value: int) -> bool:
    """True if the enable bit (bit 22) of a PERFEVTSEL value is set."""
    return bool(value & EVTSEL_EN)


# --------------------------------------------------------------------------
# IA32_FIXED_CTR_CTRL fields: 4 bits per fixed counter
#   bit0 enable-OS, bit1 enable-USR, bit2 anythread, bit3 PMI
# --------------------------------------------------------------------------

def fixed_ctr_ctrl_encode(counter_index: int, *, usr: bool = True, os: bool = True) -> int:
    """Enable-field for one fixed counter inside IA32_FIXED_CTR_CTRL."""
    field = (1 if os else 0) | ((1 if usr else 0) << 1)
    return field << (4 * counter_index)


def fixed_ctr_enabled(ctrl_value: int, counter_index: int) -> bool:
    """True if fixed counter *counter_index* counts in any ring."""
    return bool((ctrl_value >> (4 * counter_index)) & 0b11)


# --------------------------------------------------------------------------
# IA32_PERF_GLOBAL_CTRL fields
# --------------------------------------------------------------------------

def global_ctrl_pmc_bit(index: int) -> int:
    """Enable bit for general-purpose counter *index*."""
    return 1 << index


def global_ctrl_fixed_bit(index: int) -> int:
    """Enable bit for fixed counter *index* (bits 32..34)."""
    return 1 << (32 + index)


# --------------------------------------------------------------------------
# IA32_MISC_ENABLE feature bits (Core 2; see paper section II.D)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MiscEnableBit:
    """One switchable/reportable feature inside IA32_MISC_ENABLE."""

    name: str            # likwid-features display name
    key: str             # command-line key (-u/-e argument)
    bit: int             # bit position
    writable: bool       # can the tool toggle it?
    invert: bool = False # True when *set* means *disabled* (prefetch bits)


# Bit assignments per Intel SDM table for IA32_MISC_ENABLE on Core 2.
MISC_ENABLE_BITS: tuple[MiscEnableBit, ...] = (
    MiscEnableBit("Fast-Strings", "FAST_STRINGS", 0, False),
    MiscEnableBit("Automatic Thermal Control", "TM1", 3, False),
    MiscEnableBit("Performance monitoring", "PERFMON", 7, False),
    MiscEnableBit("Hardware Prefetcher", "HW_PREFETCHER", 9, True, invert=True),
    MiscEnableBit("Branch Trace Storage", "BTS", 11, False, invert=True),
    MiscEnableBit("PEBS", "PEBS", 12, False, invert=True),
    MiscEnableBit("Intel Enhanced SpeedStep", "SPEEDSTEP", 16, False),
    MiscEnableBit("MONITOR/MWAIT", "MONITOR", 18, False),
    MiscEnableBit("Adjacent Cache Line Prefetch", "CL_PREFETCHER", 19, True, invert=True),
    MiscEnableBit("Limit CPUID Maxval", "CPUID_MAX", 22, False),
    MiscEnableBit("XD Bit Disable", "XD_BIT", 34, False),
    MiscEnableBit("DCU Prefetcher", "DCU_PREFETCHER", 37, True, invert=True),
    MiscEnableBit("Intel Dynamic Acceleration", "IDA", 38, False, invert=True),
    MiscEnableBit("IP Prefetcher", "IP_PREFETCHER", 39, True, invert=True),
)

MISC_ENABLE_BY_KEY = {b.key: b for b in MISC_ENABLE_BITS}

# Prefetcher keys in the order likwid-features documents them.
PREFETCHER_KEYS = ("HW_PREFETCHER", "CL_PREFETCHER", "DCU_PREFETCHER", "IP_PREFETCHER")
