"""Simulated x86 hardware substrate: CPUID, MSRs, PMUs, caches.

This package replaces the physical hardware the original LIKWID talks
to (see DESIGN.md section 2 for the substitution map).
"""

from repro.hw.machine import SimMachine
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

__all__ = ["SimMachine", "ArchSpec", "CacheSpec", "MachinePerf"]
