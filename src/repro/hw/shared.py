"""Multi-core trace simulation with a shared last-level cache.

The single-core :class:`~repro.hw.cache.CacheHierarchy` cannot show the
effect the paper's case study 2 is built on: threads communicating
*through a shared cache*.  :class:`SharedCacheSystem` simulates one
socket exactly — private L1/L2 per core, one shared LLC instance, a
write-invalidate coherence protocol between the private hierarchies —
so the shared-cache reuse of pipeline-parallel (wavefront) processing,
and its destruction when threads do NOT share the LLC, is observable
at trace granularity.

Coherence model: private caches hold at most one core's copy of a
dirty line; a store by core A invalidates B's private copies
(write-invalidate).  Clean lines may be replicated.  Dirty data
written back from a private hierarchy lands in the shared LLC, where
another core's demand read can pick it up without touching memory —
the wavefront mechanism in miniature.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.hw.cache import SetAssocCache
from repro.hw.spec import ArchSpec, CacheSpec


class SharedCacheSystem:
    """One socket's cores with private levels and a shared LLC."""

    def __init__(self, spec: ArchSpec, *, cores: int | None = None):
        self.spec = spec
        self.num_cores = cores or spec.cores_per_socket
        data_caches = spec.data_caches()
        llc = data_caches[-1]
        if llc.threads_sharing <= spec.threads_per_core:
            raise WorkloadError(
                f"{spec.name} has no shared last-level cache")
        private_specs: list[CacheSpec] = [
            c for c in data_caches
            if c.threads_sharing <= spec.threads_per_core]
        self.private: list[list[SetAssocCache]] = [
            [SetAssocCache(c, name=f"core{core}-L{c.level}")
             for c in private_specs]
            for core in range(self.num_cores)
        ]
        self.shared = SetAssocCache(llc, name="LLC")
        self.line_size = llc.line_size
        self.dram_reads = 0
        self.dram_writes = 0
        self.llc_forwards = 0   # reads served by another core's data
        self.invalidations = 0
        self.loads = [0] * self.num_cores
        self.stores = [0] * self.num_cores
        # line -> set of cores with a private copy; dirty ownership.
        self._copies: dict[int, set[int]] = {}
        self._dirty_owner: dict[int, int] = {}

    # -- internals ----------------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self.line_size

    def _private_lookup(self, core: int, line: int) -> bool:
        return any(level.access(line) for level in self.private[core])

    def _fill_private(self, core: int, line: int, *, dirty: bool) -> None:
        for level in reversed(self.private[core]):
            victim = level.fill(line, dirty=dirty and level
                                is self.private[core][0])
            if victim is not None:
                self._evict_private(core, victim)
        self._copies.setdefault(line, set()).add(core)
        if dirty:
            self._dirty_owner[line] = core

    def _evict_private(self, core: int, victim: tuple[int, bool]) -> None:
        line, dirty = victim
        holders = self._copies.get(line)
        if holders is not None:
            holders.discard(core)
            if not holders:
                self._copies.pop(line, None)
        if dirty:
            # Writeback into the shared LLC.
            self._dirty_owner.pop(line, None)
            llc_victim = self.shared.fill(line, dirty=True)
            if llc_victim is not None and llc_victim[1]:
                self.dram_writes += 1

    def _invalidate_others(self, core: int, line: int) -> None:
        holders = self._copies.get(line, set())
        for other in list(holders):
            if other == core:
                continue
            for level in self.private[other]:
                # O(1) mapped-set membership probe (has_line) — the
                # coherence path must never scan whole caches, and the
                # probe must not touch LRU state or demand stats.
                if line in level:
                    level.invalidate(line)
            holders.discard(other)
            self.invalidations += 1
        self._dirty_owner.pop(line, None)

    # -- access interface ------------------------------------------------------

    def load(self, core: int, addr: int) -> str:
        """One load; returns the level that served it:
        'private' | 'llc' | 'forward' | 'dram'."""
        self._check_core(core)
        self.loads[core] += 1
        line = self._line(addr)
        if self._private_lookup(core, line):
            return "private"
        # Dirty data in another core's private hierarchy: forward it
        # (and demote the owner's copy to clean-shared via the LLC).
        owner = self._dirty_owner.get(line)
        if owner is not None and owner != core:
            self.llc_forwards += 1
            self.shared.fill(line, dirty=True)
            self._dirty_owner.pop(line, None)
            self._fill_private(core, line, dirty=False)
            return "forward"
        if self.shared.access(line):
            self._fill_private(core, line, dirty=False)
            return "llc"
        self.dram_reads += 1
        victim = self.shared.fill(line)
        if victim is not None and victim[1]:
            self.dram_writes += 1
        self._fill_private(core, line, dirty=False)
        return "dram"

    def store(self, core: int, addr: int) -> str:
        """One store (write-allocate, write-invalidate coherence)."""
        self._check_core(core)
        self.stores[core] += 1
        line = self._line(addr)
        self._invalidate_others(core, line)
        if self._private_lookup(core, line):
            self._fill_private(core, line, dirty=True)
            return "private"
        if self.shared.access(line):
            self._fill_private(core, line, dirty=True)
            return "llc"
        self.dram_reads += 1   # write-allocate
        victim = self.shared.fill(line)
        if victim is not None and victim[1]:
            self.dram_writes += 1
        self._fill_private(core, line, dirty=True)
        return "dram"

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise WorkloadError(f"no core {core} in this system")
