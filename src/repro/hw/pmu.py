"""Performance monitoring units (core PMU and socket-scope uncore PMU).

The PMU owns the counter registers inside each hardware thread's MSR
space and implements the *counting semantics*: when simulated execution
reports event channels (see :mod:`repro.hw.events`), every counter that
is currently programmed and enabled for a matching event accumulates,
with 48-bit wrap-around exactly like the physical counters.

Key behaviours reproduced from the paper and the Intel/AMD manuals:

* Intel cores have N general-purpose counters (2 on Core 2/Atom, 4 on
  Nehalem/Westmere) plus 3 *fixed* counters hard-wired to
  INSTR_RETIRED_ANY / CPU_CLK_UNHALTED_CORE / CPU_CLK_UNHALTED_REF;
  the paper's CPI metric relies on the fixed pair always counting.
* AMD K8/K10 have 4 general-purpose counters and *no* fixed counters.
* Nehalem's "uncore" PMU is shared by all cores of a socket — the
  registers are socket-scope, which is why likwid-perfCtr needs socket
  locks.  Here the uncore registers are declared in every thread's MSR
  space but alias one shared register file per socket.
* Counting is core-based, not process-based: the PMU adds whatever the
  execution layer says ran on the core, with no notion of processes.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.hw import registers as regs
from repro.hw.events import Channel, CounterScope, EventTable
from repro.hw.msr import MSRSpace

COUNTER_WIDTH = 48
COUNTER_MASK = (1 << COUNTER_WIDTH) - 1


@dataclass(frozen=True)
class PmuSpec:
    """Counter resources of one architecture."""

    num_pmcs: int
    has_fixed: bool           # Intel fixed counters present
    num_uncore_pmcs: int = 0  # Nehalem/Westmere: 8, else 0
    has_uncore_fixed: bool = False
    vendor_amd: bool = False  # AMD register addresses
    counter_width: int = COUNTER_WIDTH  # bits before wrap-around
    # Explicit register bases for non-x86 layouts (POWER9-like); when
    # None the classic Intel/AMD addresses apply.
    pmc_base: int | None = None
    evtsel_base: int | None = None
    global_ctrl_addr: int | None = None

    @property
    def counter_mask(self) -> int:
        return (1 << self.counter_width) - 1

    @property
    def has_uncore(self) -> bool:
        return self.num_uncore_pmcs > 0

    @property
    def has_global_ctrl(self) -> bool:
        """A single register gates all counters (Intel's GLOBAL_CTRL,
        POWER9's MMCR0 analog); AMD relies on the per-EVTSEL EN bit."""
        return self.global_ctrl_addr is not None or not self.vendor_amd

    @property
    def has_global_status(self) -> bool:
        """Intel's architectural STATUS/OVF_CTRL pair; custom layouts
        declare a global control without the overflow-ack registers."""
        return not self.vendor_amd and self.global_ctrl_addr is None

    def global_ctrl_address(self) -> int:
        if self.global_ctrl_addr is not None:
            return self.global_ctrl_addr
        return regs.IA32_PERF_GLOBAL_CTRL

    def pmc_address(self, index: int) -> int:
        if self.pmc_base is not None:
            return self.pmc_base + index
        base = regs.AMD_PMC0 if self.vendor_amd else regs.IA32_PMC0
        return base + index

    def evtsel_address(self, index: int) -> int:
        if self.evtsel_base is not None:
            return self.evtsel_base + index
        base = regs.AMD_PERFEVTSEL0 if self.vendor_amd else regs.IA32_PERFEVTSEL0
        return base + index


class CorePMU:
    """Per-hardware-thread performance monitoring unit.

    Counter wrap-around raises the counter's bit in
    IA32_PERF_GLOBAL_STATUS and delivers a PMI to any registered
    overflow handler — the mechanism behind IP sampling (paper §II.A:
    "overflowing hardware counters can generate interrupts, which can
    be used for IP or call-stack sampling").  Writing a set bit to
    IA32_PERF_GLOBAL_OVF_CTRL acknowledges (clears) the status bit.
    """

    def __init__(self, hwthread: int, msr: MSRSpace, spec: PmuSpec,
                 events: EventTable):
        self.hwthread = hwthread
        self.msr = msr
        self.spec = spec
        self.events = events
        # PMI handlers: called with (hwthread, status_bit_index).
        self.overflow_handlers: list = []
        for i in range(spec.num_pmcs):
            msr.declare(spec.evtsel_address(i), name=f"PERFEVTSEL{i}")
            msr.declare(spec.pmc_address(i), write_mask=spec.counter_mask,
                        name=f"PMC{i}")
        if spec.has_fixed:
            msr.declare(regs.IA32_FIXED_CTR0, write_mask=spec.counter_mask,
                        name="FIXED_CTR0")
            msr.declare(regs.IA32_FIXED_CTR1, write_mask=spec.counter_mask,
                        name="FIXED_CTR1")
            msr.declare(regs.IA32_FIXED_CTR2, write_mask=spec.counter_mask,
                        name="FIXED_CTR2")
            msr.declare(regs.IA32_FIXED_CTR_CTRL, name="FIXED_CTR_CTRL")
        if spec.has_global_ctrl:
            msr.declare(spec.global_ctrl_address(), name="PERF_GLOBAL_CTRL")
        if spec.has_global_status:
            msr.declare(regs.IA32_PERF_GLOBAL_STATUS, write_mask=0,
                        name="PERF_GLOBAL_STATUS")
            msr.declare(regs.IA32_PERF_GLOBAL_OVF_CTRL,
                        write_hook=self._ack_overflow,
                        name="PERF_GLOBAL_OVF_CTRL")

    def _ack_overflow(self, _addr: int, value: int) -> None:
        """OVF_CTRL write: clear the acknowledged status bits."""
        status = self.msr.peek(regs.IA32_PERF_GLOBAL_STATUS)
        self.msr.poke(regs.IA32_PERF_GLOBAL_STATUS, status & ~value)

    def _raise_overflow(self, status_bit: int) -> None:
        if self.spec.has_global_status:
            status = self.msr.peek(regs.IA32_PERF_GLOBAL_STATUS)
            self.msr.poke(regs.IA32_PERF_GLOBAL_STATUS,
                          status | (1 << status_bit))
        # AMD (APIC-only) and POWER9-like PMUs have no status register;
        # the PMI still fires.
        for handler in self.overflow_handlers:
            handler(self.hwthread, status_bit)

    # -- enable logic ------------------------------------------------------

    def _global_ctrl(self) -> int:
        if not self.spec.has_global_ctrl:
            return ~0  # AMD has no global enable register; EN bit suffices
        return self.msr.peek(self.spec.global_ctrl_address())

    def pmc_active(self, index: int) -> bool:
        """True if general counter *index* is currently counting."""
        evtsel = self.msr.peek(self.spec.evtsel_address(index))
        if not regs.evtsel_enabled(evtsel):
            return False
        return bool(self._global_ctrl() & regs.global_ctrl_pmc_bit(index))

    def fixed_active(self, index: int) -> bool:
        """True if fixed counter *index* is currently counting."""
        if not self.spec.has_fixed:
            return False
        ctrl = self.msr.peek(regs.IA32_FIXED_CTR_CTRL)
        if not regs.fixed_ctr_enabled(ctrl, index):
            return False
        return bool(self._global_ctrl() & regs.global_ctrl_fixed_bit(index))

    # -- counting ----------------------------------------------------------

    _FIXED_CHANNELS = (Channel.INSTRUCTIONS, Channel.CORE_CYCLES,
                       Channel.REF_CYCLES)

    def apply(self, channels: Mapping[Channel, float]) -> None:
        """Accumulate one execution slice's event channels.

        Everything that executed on this hardware thread is counted —
        the PMU has no notion of which process generated the events
        (the paper's core-based-counting design point)."""
        for i in range(self.spec.num_pmcs):
            if not self.pmc_active(i):
                continue
            evtsel = self.msr.peek(self.spec.evtsel_address(i))
            ev = self.events.by_encoding(regs.evtsel_event(evtsel),
                                         regs.evtsel_umask(evtsel))
            if ev is None:
                continue
            count = channels.get(ev.channel, 0.0)
            if count:
                addr = self.spec.pmc_address(i)
                raw = self.msr.peek(addr) + int(round(count))
                self.msr.poke(addr, raw & self.spec.counter_mask)
                if raw > self.spec.counter_mask:
                    self._raise_overflow(i)
        for fi, channel in enumerate(self._FIXED_CHANNELS):
            if not self.fixed_active(fi):
                continue
            count = channels.get(channel, 0.0)
            if count:
                addr = regs.IA32_FIXED_CTR0 + fi
                raw = self.msr.peek(addr) + int(round(count))
                self.msr.poke(addr, raw & self.spec.counter_mask)
                if raw > self.spec.counter_mask:
                    self._raise_overflow(32 + fi)


class UncorePMU:
    """Socket-scope uncore PMU (Nehalem/Westmere).

    One instance per socket; its registers appear in the MSR space of
    *every* hardware thread on the socket, aliasing shared storage.
    Reading UPMC0 from any core of the socket returns the same value —
    the reason likwid-perfCtr applies socket locks so the count is
    attributed to exactly one thread.
    """

    def __init__(self, socket: int, spec: PmuSpec, events: EventTable):
        self.socket = socket
        self.spec = spec
        self.events = events
        self._shared: dict[int, int] = {}
        addresses = [regs.MSR_UNCORE_PERF_GLOBAL_CTRL]
        for i in range(spec.num_uncore_pmcs):
            addresses.append(regs.MSR_UNCORE_PERFEVTSEL0 + i)
            addresses.append(regs.MSR_UNCORE_PMC0 + i)
        if spec.has_uncore_fixed:
            addresses.append(regs.MSR_UNCORE_FIXED_CTR0)
            addresses.append(regs.MSR_UNCORE_FIXED_CTR_CTRL)
        for addr in addresses:
            self._shared[addr] = 0

    def attach(self, msr: MSRSpace) -> None:
        """Declare the shared uncore registers inside one thread's MSR
        space, with hooks aliasing this socket's storage."""

        def make_read(addr: int):
            return lambda _current: self._shared[addr]

        def make_write(addr: int):
            def hook(_addr: int, value: int) -> None:
                self._shared[addr] = value
            return hook

        for addr in self._shared:
            msr.declare(addr, read_hook=make_read(addr),
                        write_hook=make_write(addr),
                        name=f"UNCORE_{addr:X}")

    # -- direct shared-file access (used by apply and tests) ---------------

    def peek(self, addr: int) -> int:
        return self._shared[addr]

    def poke(self, addr: int, value: int) -> None:
        self._shared[addr] = value & ((1 << 64) - 1)

    def upmc_active(self, index: int) -> bool:
        evtsel = self._shared[regs.MSR_UNCORE_PERFEVTSEL0 + index]
        if not regs.evtsel_enabled(evtsel):
            return False
        ctrl = self._shared[regs.MSR_UNCORE_PERF_GLOBAL_CTRL]
        return bool(ctrl & regs.global_ctrl_pmc_bit(index))

    def fixed_active(self) -> bool:
        if not self.spec.has_uncore_fixed:
            return False
        if not self._shared[regs.MSR_UNCORE_FIXED_CTR_CTRL] & 1:
            return False
        # Uncore fixed enable lives in global ctrl bit 32.
        return bool(self._shared[regs.MSR_UNCORE_PERF_GLOBAL_CTRL] & (1 << 32))

    def apply(self, channels: Mapping[Channel, float]) -> None:
        """Accumulate socket-scope channels into the uncore counters."""
        for i in range(self.spec.num_uncore_pmcs):
            if not self.upmc_active(i):
                continue
            evtsel = self._shared[regs.MSR_UNCORE_PERFEVTSEL0 + i]
            ev = self.events.by_encoding(regs.evtsel_event(evtsel),
                                         regs.evtsel_umask(evtsel),
                                         scope=CounterScope.UNCORE)
            if ev is None:
                continue
            count = channels.get(ev.channel, 0.0)
            if count:
                addr = regs.MSR_UNCORE_PMC0 + i
                self._shared[addr] = (self._shared[addr]
                                      + int(round(count))) & self.spec.counter_mask
        if self.fixed_active():
            count = channels.get(Channel.UNC_CYCLES, 0.0)
            if count:
                addr = regs.MSR_UNCORE_FIXED_CTR0
                self._shared[addr] = (self._shared[addr]
                                      + int(round(count))) & self.spec.counter_mask
