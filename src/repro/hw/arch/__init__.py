"""Architecture catalog: every machine the paper lists as supported.

Use :func:`get_arch` for a spec and :func:`create_machine` for a fully
wired :class:`~repro.hw.machine.SimMachine`.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.hw.arch.amd import AMD_ISTANBUL, AMD_K8
from repro.hw.arch.intel_core2 import CORE2_DUO, CORE2_QUAD
from repro.hw.arch.intel_nehalem import NEHALEM_EP
from repro.hw.arch.intel_small import ATOM, BANIAS, NEHALEM_WS, PENTIUM_M
from repro.hw.arch.intel_westmere import WESTMERE_EP
from repro.hw.arch.power9 import POWER9
from repro.hw.machine import SimMachine
from repro.hw.spec import ArchSpec

ARCH_SPECS: dict[str, ArchSpec] = {
    spec.name: spec
    for spec in (CORE2_QUAD, CORE2_DUO, NEHALEM_EP, NEHALEM_WS,
                 WESTMERE_EP, ATOM, PENTIUM_M, BANIAS, AMD_K8,
                 AMD_ISTANBUL, POWER9)
}


def available() -> list[str]:
    """Names of all simulated architectures."""
    return sorted(ARCH_SPECS)


def get_arch(name: str) -> ArchSpec:
    """Look up an architecture spec by its short name."""
    try:
        return ARCH_SPECS[name]
    except KeyError:
        raise TopologyError(
            f"unknown architecture {name!r}; available: {', '.join(available())}"
        ) from None


def create_machine(name: str) -> SimMachine:
    """Instantiate a fully wired simulated node."""
    return SimMachine(get_arch(name))


__all__ = ["ARCH_SPECS", "available", "get_arch", "create_machine",
           "CORE2_QUAD", "CORE2_DUO", "NEHALEM_EP", "WESTMERE_EP",
           "ATOM", "PENTIUM_M", "BANIAS", "NEHALEM_WS", "AMD_K8",
           "AMD_ISTANBUL", "POWER9"]
