"""A POWER9-like (SMT4) dual-socket node — the eleventh architecture.

This machine exists to prove the :mod:`repro.oskern.access` backend
API is not secretly x86-shaped (ISSUE 6): its counter file is laid out
on the POWER9 SPR numbers rather than the IA32 MSR map, it has no
fixed counters, no ``IA32_MISC_ENABLE`` and no Intel
STATUS/OVF_CTRL pair — a single MMCR0-style control register gates
all six counters.

Documented simplifications of the model (not claims about hardware):

* Registers are addressed by their SPR numbers inside the same
  per-thread register-file abstraction the x86 machines use: PMC1–6
  live at SPR 771–776 (0x303–0x308) and the global control at MMCR0's
  SPR 779 (0x30B).  Event selection, which real POWER9 packs into
  MMCR1 fields, is modeled as a per-counter selector bank at
  0x30E–0x313 using the shared PERFEVTSEL encoding so the LK30x
  encoding lints apply unchanged.
* Firmware answers the topology enumeration protocol of the leaf-11
  style (the generic "SMT bits below core bits" scheme), so the
  existing topology prober works without an x86 vendor check.
* ``PM_RUN_INST_CMPL`` / ``PM_RUN_CYC`` are hard-wired to PMC5/PMC6
  on real POWER9; here they carry ``counter_mask`` restrictions to
  the last two general counters — the always-counted pair the CPI
  metric rides on, without Intel's separate fixed-counter file.
"""

from __future__ import annotations

from repro.hw.events import Channel, EventDef, EventTable
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

# SPR numbers of the modeled counter file.
P9_PMC_BASE = 0x303        # SPR 771..776: PMC1..PMC6
P9_EVTSEL_BASE = 0x30E     # modeled per-counter selector bank (MMCR1)
P9_MMCR0 = 0x30B           # SPR 779: global freeze/run control


def power9_events() -> EventTable:
    """POWER9-flavoured event names on the shared encoding layout."""
    table = EventTable("power9")

    def ev(name, code, umask, channel, mask=None):
        return EventDef(name, code, umask, channel,
                        counter_mask=mask)

    table.add_all([
        # The always-counted run-latch pair, restricted to PMC4/PMC5.
        ev("PM_RUN_INST_CMPL", 0xFA, 0x04, Channel.INSTRUCTIONS,
           mask=frozenset({4})),
        ev("PM_RUN_CYC", 0xF4, 0x04, Channel.CORE_CYCLES,
           mask=frozenset({5})),
        # General events, programmable on any counter.
        ev("PM_INST_CMPL", 0x02, 0x00, Channel.INSTRUCTIONS),
        ev("PM_CYC", 0x1E, 0x00, Channel.CORE_CYCLES),
        ev("PM_VECTOR_FLOP_CMPL", 0x50, 0x04, Channel.FLOPS_PACKED_DP),
        ev("PM_SCALAR_FLOP_CMPL", 0x50, 0x08, Channel.FLOPS_SCALAR_DP),
        ev("PM_VECTOR_FLOP_SP_CMPL", 0x51, 0x04, Channel.FLOPS_PACKED_SP),
        ev("PM_SCALAR_FLOP_SP_CMPL", 0x51, 0x08, Channel.FLOPS_SCALAR_SP),
        ev("PM_LD_CMPL", 0x54, 0x00, Channel.LOADS),
        ev("PM_ST_CMPL", 0x55, 0x00, Channel.STORES),
        ev("PM_LD_MISS_L1", 0x3E, 0x00, Channel.L1D_REPLACEMENT),
        ev("PM_BR_CMPL", 0x4D, 0x00, Channel.BRANCHES),
        ev("PM_BR_MPRED_CMPL", 0x4E, 0x00, Channel.BRANCH_MISSES),
        ev("PM_DTLB_MISS", 0x66, 0x00, Channel.DTLB_MISSES),
        ev("PM_DATA_FROM_LMEM", 0x48, 0x01, Channel.DRAM_READS),
        ev("PM_DATA_TO_LMEM", 0x48, 0x02, Channel.DRAM_WRITES),
    ])
    return table


POWER9 = ArchSpec(
    name="power9",
    cpu_name="IBM POWER9 (SMT4) processor",
    vendor="PowerISA3.0B",
    family=9, model=2, stepping=2,
    clock_hz=3.8e9,
    sockets=2, cores_per_socket=4, threads_per_core=4,
    core_ids=(0, 1, 2, 3),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 128, inclusive=False,
                  threads_sharing=4),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 128,
                  inclusive=False, threads_sharing=4),
        CacheSpec(2, "Unified cache", 512 * 1024, 8, 128, inclusive=False,
                  threads_sharing=4),
        CacheSpec(3, "Unified cache", 10 * 1024 * 1024, 20, 128,
                  inclusive=False, threads_sharing=16),
    ),
    pmu=PmuSpec(num_pmcs=6, has_fixed=False,
                pmc_base=P9_PMC_BASE, evtsel_base=P9_EVTSEL_BASE,
                global_ctrl_addr=P9_MMCR0),
    events=power9_events(),
    cpuid_style="leaf11",
    # Eight DDR4 channels per socket: high sustained socket bandwidth,
    # single-thread extraction limited as on the x86 testbeds.
    perf=MachinePerf(socket_mem_bw=110.0e9, thread_mem_bw=22.0e9,
                     socket_l3_bw=190.0e9, thread_l3_bw=38.0e9,
                     remote_mem_penalty=0.65, smt_issue_scale=1.4),
    feature_flags=(),
)
