"""Intel Core 2 machine descriptions.

Two variants used in the paper: the 45nm Core 2 Quad (the marker-API
FLOPS_DP listing, "Intel Core 2 45nm processor", 2.83 GHz) and the
65nm Core 2 Duo used for the likwid-features listing.  Core 2 is the
only architecture on which likwid-features can toggle prefetchers
(``IA32_MISC_ENABLE`` bits), as the paper states.
"""

from __future__ import annotations

from repro.hw.arch.common import core2_events
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

_CORE2_PMU = PmuSpec(num_pmcs=2, has_fixed=True)

_CORE2_FLAGS = ("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                "sse", "sse2", "sse3", "ssse3", "sse4_1")

CORE2_QUAD = ArchSpec(
    name="core2",
    cpu_name="Intel Core 2 45nm processor",
    vendor="GenuineIntel",
    family=6, model=0x17, stepping=6,
    clock_hz=2.83e9,
    sockets=1, cores_per_socket=4, threads_per_core=1,
    core_ids=(0, 1, 2, 3),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        # Penryn: two 6 MB L2 slices, each shared by a core pair; the
        # L2 is the last cache level, so memory traffic shows up as
        # L2_LINES_IN/OUT.
        CacheSpec(2, "Unified cache", 6 * 1024 * 1024, 24, 64,
                  inclusive=True, threads_sharing=2),
    ),
    pmu=_CORE2_PMU,
    events=core2_events(),
    cpuid_style="leaf4",
    perf=MachinePerf(socket_mem_bw=7.0e9, thread_mem_bw=4.2e9,
                     socket_l3_bw=45.0e9, thread_l3_bw=18.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.0),
    feature_flags=_CORE2_FLAGS,
    has_misc_enable=True,
)

CORE2_DUO = ArchSpec(
    name="core2duo",
    cpu_name="Intel Core 2 65nm processor",
    vendor="GenuineIntel",
    family=6, model=0x0F, stepping=6,
    clock_hz=2.4e9,
    sockets=1, cores_per_socket=2, threads_per_core=1,
    core_ids=(0, 1),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(2, "Unified cache", 4 * 1024 * 1024, 16, 64,
                  inclusive=True, threads_sharing=2),
    ),
    pmu=_CORE2_PMU,
    events=core2_events(),
    cpuid_style="leaf4",
    perf=MachinePerf(socket_mem_bw=6.0e9, thread_mem_bw=4.0e9,
                     socket_l3_bw=35.0e9, thread_l3_bw=16.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.0),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2", "sse3", "ssse3"),
    has_misc_enable=True,
)
