"""Shared event-table builders for the architecture catalog.

Event encodings follow the Intel SDM Vol. 3B performance-event tables
and the AMD BKDG; every event carries the semantic channel the
simulated execution engine feeds (see :mod:`repro.hw.events`).
"""

from __future__ import annotations

from repro.hw.events import Channel, CounterScope, EventDef, EventTable


def _ev(name: str, code: int, umask: int, channel: Channel,
        scope: CounterScope = CounterScope.CORE,
        fixed: int | None = None) -> EventDef:
    return EventDef(name, code, umask, channel, scope, fixed_index=fixed)


def intel_fixed_events() -> list[EventDef]:
    """The three architectural fixed-counter events (Core 2 onward).

    The paper notes these are "always counted (using two unassignable
    fixed counters)" — INSTR_RETIRED_ANY and CPU_CLK_UNHALTED_CORE feed
    the derived CPI metric in every group.
    """
    return [
        _ev("INSTR_RETIRED_ANY", 0xC0, 0x00, Channel.INSTRUCTIONS, fixed=0),
        _ev("CPU_CLK_UNHALTED_CORE", 0x3C, 0x00, Channel.CORE_CYCLES, fixed=1),
        _ev("CPU_CLK_UNHALTED_REF", 0x3C, 0x01, Channel.REF_CYCLES, fixed=2),
    ]


def core2_events() -> EventTable:
    """Intel Core 2 (65nm/45nm) core events; L2 is the last-level cache,
    so memory traffic is observed through L2 line fills/evicts."""
    table = EventTable("core2")
    table.add_all(intel_fixed_events())
    table.add_all([
        _ev("SIMD_COMP_INST_RETIRED_PACKED_SINGLE", 0xCA, 0x01, Channel.FLOPS_PACKED_SP),
        _ev("SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", 0xCA, 0x02, Channel.FLOPS_SCALAR_SP),
        _ev("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0xCA, 0x04, Channel.FLOPS_PACKED_DP),
        _ev("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", 0xCA, 0x08, Channel.FLOPS_SCALAR_DP),
        _ev("L1D_REPL", 0x45, 0x0F, Channel.L1D_REPLACEMENT),
        _ev("L1D_M_EVICT", 0x47, 0x00, Channel.L1D_EVICT),
        _ev("L1D_ALL_REF", 0x43, 0x01, Channel.LOADS),
        _ev("L2_LINES_IN_ANY", 0x24, 0x70, Channel.L2_LINES_IN),
        _ev("L2_LINES_OUT_ANY", 0x26, 0x70, Channel.L2_LINES_OUT),
        _ev("L2_RQSTS_ANY", 0x2E, 0xFF, Channel.L2_REQUESTS),
        _ev("L2_RQSTS_MISS", 0x2E, 0x41, Channel.L2_MISSES),
        _ev("INST_RETIRED_LOADS", 0xC0, 0x01, Channel.LOADS),
        _ev("INST_RETIRED_STORES", 0xC0, 0x02, Channel.STORES),
        _ev("BR_INST_RETIRED_ANY", 0xC4, 0x00, Channel.BRANCHES),
        _ev("BR_INST_RETIRED_MISPRED", 0xC5, 0x00, Channel.BRANCH_MISSES),
        _ev("DTLB_MISSES_ANY", 0x08, 0x01, Channel.DTLB_MISSES),
        _ev("BUS_TRANS_MEM_ANY", 0x6F, 0xC0, Channel.DRAM_READS),
    ])
    return table


def nehalem_events(arch: str) -> EventTable:
    """Intel Nehalem/Westmere core + uncore events.

    Uncore events are socket scope (the UNC_* family) — the reason
    likwid-perfCtr applies socket locks, and the events behind the
    paper's Table II (UNC_L3_LINES_IN_ANY / UNC_L3_LINES_OUT_ANY).
    """
    table = EventTable(arch)
    table.add_all(intel_fixed_events())
    table.add_all([
        _ev("FP_COMP_OPS_EXE_SSE_FP_PACKED", 0x10, 0x10, Channel.FLOPS_PACKED_DP),
        _ev("FP_COMP_OPS_EXE_SSE_FP_SCALAR", 0x10, 0x20, Channel.FLOPS_SCALAR_DP),
        _ev("FP_COMP_OPS_EXE_SSE_SINGLE_PRECISION", 0x10, 0x40, Channel.FLOPS_PACKED_SP),
        _ev("FP_COMP_OPS_EXE_SSE_SCALAR_SINGLE", 0x10, 0x41, Channel.FLOPS_SCALAR_SP),
        _ev("L1D_REPL", 0x51, 0x01, Channel.L1D_REPLACEMENT),
        _ev("L1D_M_EVICT", 0x51, 0x04, Channel.L1D_EVICT),
        _ev("L2_LINES_IN_ANY", 0xF1, 0x07, Channel.L2_LINES_IN),
        _ev("L2_LINES_OUT_ANY", 0xF2, 0x0F, Channel.L2_LINES_OUT),
        _ev("L2_RQSTS_REFERENCES", 0x24, 0xFF, Channel.L2_REQUESTS),
        _ev("L2_RQSTS_MISS", 0x24, 0xAA, Channel.L2_MISSES),
        _ev("MEM_INST_RETIRED_LOADS", 0x0B, 0x01, Channel.LOADS),
        _ev("MEM_INST_RETIRED_STORES", 0x0B, 0x02, Channel.STORES),
        _ev("BR_INST_RETIRED_ALL_BRANCHES", 0xC4, 0x04, Channel.BRANCHES),
        _ev("BR_MISP_RETIRED_ALL_BRANCHES", 0xC5, 0x02, Channel.BRANCH_MISSES),
        _ev("DTLB_MISSES_ANY", 0x49, 0x01, Channel.DTLB_MISSES),
        # Counter-constrained event: the offcore-response facility is
        # backed by dedicated match registers tied to the first two
        # general counters (SDM: OFFCORE_RESPONSE_0/1).
        EventDef("OFFCORE_RESPONSE_0_ANY_REQUEST", 0xB7, 0x01,
                 Channel.DRAM_READS, counter_mask=frozenset({0, 1})),
        # Uncore (socket scope)
        _ev("UNC_L3_HITS_ANY", 0x08, 0x03, Channel.UNC_L3_HITS, CounterScope.UNCORE),
        _ev("UNC_L3_MISS_ANY", 0x09, 0x03, Channel.UNC_L3_MISSES, CounterScope.UNCORE),
        _ev("UNC_L3_LINES_IN_ANY", 0x0A, 0x0F, Channel.L3_LINES_IN, CounterScope.UNCORE),
        _ev("UNC_L3_LINES_OUT_ANY", 0x0B, 0x0F, Channel.L3_LINES_OUT, CounterScope.UNCORE),
        _ev("UNC_QMC_NORMAL_READS_ANY", 0x2C, 0x07, Channel.MEM_READS, CounterScope.UNCORE),
        _ev("UNC_QMC_WRITES_FULL_ANY", 0x2D, 0x07, Channel.MEM_WRITES, CounterScope.UNCORE),
    ])
    return table


def atom_events() -> EventTable:
    """Intel Atom (Bonnell): Core-2-like SIMD events, 2 PMCs + fixed."""
    table = EventTable("atom")
    table.add_all(intel_fixed_events())
    table.add_all([
        _ev("SIMD_COMP_INST_RETIRED_PACKED_SINGLE", 0xCA, 0x01, Channel.FLOPS_PACKED_SP),
        _ev("SIMD_COMP_INST_RETIRED_SCALAR_SINGLE", 0xCA, 0x02, Channel.FLOPS_SCALAR_SP),
        _ev("SIMD_COMP_INST_RETIRED_PACKED_DOUBLE", 0xCA, 0x04, Channel.FLOPS_PACKED_DP),
        _ev("SIMD_COMP_INST_RETIRED_SCALAR_DOUBLE", 0xCA, 0x08, Channel.FLOPS_SCALAR_DP),
        _ev("L2_LINES_IN_ANY", 0x24, 0x70, Channel.L2_LINES_IN),
        _ev("L2_LINES_OUT_ANY", 0x26, 0x70, Channel.L2_LINES_OUT),
        _ev("L2_RQSTS_ANY", 0x2E, 0xFF, Channel.L2_REQUESTS),
        _ev("L2_RQSTS_MISS", 0x2E, 0x41, Channel.L2_MISSES),
        _ev("BR_INST_RETIRED_ANY", 0xC4, 0x00, Channel.BRANCHES),
        _ev("BR_INST_RETIRED_MISPRED", 0xC5, 0x00, Channel.BRANCH_MISSES),
    ])
    return table


def pentium_m_events() -> EventTable:
    """Intel Pentium M (Banias/Dothan): no fixed counters — instructions
    and cycles occupy general-purpose counters."""
    table = EventTable("pentium_m")
    table.add_all([
        _ev("INSTR_RETIRED_ANY", 0xC0, 0x00, Channel.INSTRUCTIONS),
        _ev("CPU_CLK_UNHALTED", 0x79, 0x00, Channel.CORE_CYCLES),
        _ev("EMON_SSE_SSE2_COMP_INST_RETIRED_PACKED_DP", 0xD9, 0x03, Channel.FLOPS_PACKED_DP),
        _ev("EMON_SSE_SSE2_COMP_INST_RETIRED_SCALAR_DP", 0xD9, 0x02, Channel.FLOPS_SCALAR_DP),
        _ev("DATA_MEM_REFS", 0x43, 0x00, Channel.LOADS),
        _ev("L2_LINES_IN", 0x24, 0x00, Channel.L2_LINES_IN),
        _ev("L2_LINES_OUT", 0x26, 0x00, Channel.L2_LINES_OUT),
        _ev("BR_INST_RETIRED", 0xC4, 0x00, Channel.BRANCHES),
        _ev("BR_MISPRED_RETIRED", 0xC5, 0x00, Channel.BRANCH_MISSES),
    ])
    return table


def amd_events(arch: str, *, has_l3: bool = False) -> EventTable:
    """AMD K8/K10 events: 4 symmetric counters, no fixed counters, and
    DRAM traffic observed through northbridge events counted core-side.

    K10 (Istanbul) additionally exposes its shared L3 through
    northbridge events that are nonetheless programmed on the core
    counters — AMD's answer to Intel's uncore, without socket locks.
    """
    table = EventTable(arch)
    if has_l3:
        table.add_all([
            _ev("L3_READ_REQUEST_ALL_CORES", 0xE1, 0xF7, Channel.L3_REQUESTS),
            _ev("L3_MISSES_ALL_CORES", 0xE2, 0xF7, Channel.L3_MISSES),
            _ev("L3_FILLS_ALL_CORES", 0xE3, 0xF7, Channel.L3_LINES_IN_CORE),
        ])
    table.add_all([
        _ev("RETIRED_INSTRUCTIONS", 0xC0, 0x00, Channel.INSTRUCTIONS),
        _ev("CPU_CLOCKS_UNHALTED", 0x76, 0x00, Channel.CORE_CYCLES),
        _ev("SSE_RETIRED_PACKED_DOUBLE", 0x03, 0x10, Channel.FLOPS_PACKED_DP),
        _ev("SSE_RETIRED_SCALAR_DOUBLE", 0x03, 0x20, Channel.FLOPS_SCALAR_DP),
        _ev("SSE_RETIRED_PACKED_SINGLE", 0x03, 0x01, Channel.FLOPS_PACKED_SP),
        _ev("SSE_RETIRED_SCALAR_SINGLE", 0x03, 0x02, Channel.FLOPS_SCALAR_SP),
        _ev("DATA_CACHE_REFILLS_L2", 0x42, 0x1E, Channel.L1D_REPLACEMENT),
        _ev("DATA_CACHE_REFILLS_NORTHBRIDGE", 0x43, 0x1E, Channel.L2_MISSES),
        _ev("DATA_CACHE_EVICTED_ALL", 0x44, 0x3F, Channel.L1D_EVICT),
        _ev("L2_FILL_WRITEBACK", 0x7F, 0x03, Channel.L2_LINES_OUT),
        _ev("L2_REQUESTS_ALL", 0x7D, 0x1F, Channel.L2_REQUESTS),
        _ev("L2_MISSES_ALL", 0x7E, 0x07, Channel.L2_MISSES),
        _ev("DRAM_ACCESSES_DCT_READS", 0xE0, 0x07, Channel.DRAM_READS),
        _ev("DRAM_ACCESSES_DCT_WRITES", 0xE0, 0x38, Channel.DRAM_WRITES),
        _ev("RETIRED_BRANCH_INSTR", 0xC2, 0x00, Channel.BRANCHES),
        _ev("RETIRED_MISPREDICTED_BRANCH_INSTR", 0xC3, 0x00, Channel.BRANCH_MISSES),
        _ev("DTLB_L2_MISS_ALL", 0x46, 0x07, Channel.DTLB_MISSES),
        _ev("RETIRED_LOADS", 0xD0, 0x00, Channel.LOADS),
        _ev("RETIRED_STORES", 0xD1, 0x00, Channel.STORES),
    ])
    return table
