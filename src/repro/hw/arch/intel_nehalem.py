"""Intel Nehalem EP (Xeon X5500-class) dual-socket node.

The machine of the paper's Figure 1, Figure 11 and Table II: two
quad-core 2.66 GHz sockets with SMT, per-core 256 kB L2, one shared
8 MB L3 per socket, QPI-attached ccNUMA memory, and the first-generation
uncore PMU (socket scope) that provides UNC_L3_LINES_IN_ANY /
UNC_L3_LINES_OUT_ANY used in Table II.
"""

from __future__ import annotations

from repro.hw.arch.common import nehalem_events
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

NEHALEM_EP = ArchSpec(
    name="nehalem_ep",
    cpu_name="Intel Core i7 (Nehalem EP) processor",
    vendor="GenuineIntel",
    family=6, model=0x1A, stepping=5,
    clock_hz=2.66e9,
    sockets=2, cores_per_socket=4, threads_per_core=2,
    core_ids=(0, 1, 2, 3),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(1, "Instruction cache", 32 * 1024, 4, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(2, "Unified cache", 256 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(3, "Unified cache", 8 * 1024 * 1024, 16, 64,
                  inclusive=True, threads_sharing=8),
    ),
    pmu=PmuSpec(num_pmcs=4, has_fixed=True, num_uncore_pmcs=8,
                has_uncore_fixed=True),
    events=nehalem_events("nehalem_ep"),
    cpuid_style="leaf11",
    # Calibrated for the paper's Nehalem EP case studies: one socket
    # saturates near 21.3 GB/s of combined read+writeback traffic; a
    # single stream cannot saturate the controller (the Fig 11 /
    # Table II discussion point (i)).
    perf=MachinePerf(socket_mem_bw=21.3e9, thread_mem_bw=9.0e9,
                     socket_l3_bw=75.0e9, thread_l3_bw=19.0e9,
                     remote_mem_penalty=0.6, smt_issue_scale=1.2),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx", "sse",
                   "sse2", "sse3", "ssse3", "sse4_1", "sse4_2", "popcnt"),
)
