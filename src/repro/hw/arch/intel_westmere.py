"""Intel Westmere EP dual-socket node (the paper's STREAM testbed).

Two hexacore 2.93 GHz sockets, two SMT threads per core.  The physical
core ids inside a package are the non-contiguous set {0, 1, 2, 8, 9,
10} — exactly what the paper's likwid-topology listing shows and the
reason topology must be decoded from the APIC id bit fields rather than
assumed dense.  Cache parameters match that listing: L1 32 kB/8-way/64
sets, L2 256 kB/8-way/512 sets (both inclusive, shared by 2 SMT
threads), L3 12 MB/16-way/12288 sets, non-inclusive, shared by all 12
threads of the socket.
"""

from __future__ import annotations

from repro.hw.arch.common import nehalem_events
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

WESTMERE_EP = ArchSpec(
    name="westmere_ep",
    cpu_name="Intel Xeon X5670 (Westmere EP) processor",
    vendor="GenuineIntel",
    family=6, model=0x2C, stepping=2,
    clock_hz=2.93e9,
    sockets=2, cores_per_socket=6, threads_per_core=2,
    core_ids=(0, 1, 2, 8, 9, 10),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(1, "Instruction cache", 32 * 1024, 4, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(2, "Unified cache", 256 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(3, "Unified cache", 12 * 1024 * 1024, 16, 64,
                  inclusive=False, threads_sharing=12),
    ),
    pmu=PmuSpec(num_pmcs=4, has_fixed=True, num_uncore_pmcs=8,
                has_uncore_fixed=True),
    events=nehalem_events("westmere_ep"),
    cpuid_style="leaf11",
    # Calibrated for Figs 4-8: one socket sustains ~21 GB/s of STREAM
    # traffic, saturating at 3-4 threads; the two-socket pinned maximum
    # is ~42 GB/s of physical traffic.
    perf=MachinePerf(socket_mem_bw=21.0e9, thread_mem_bw=9.5e9,
                     socket_l3_bw=70.0e9, thread_l3_bw=21.0e9,
                     remote_mem_penalty=0.6, smt_issue_scale=1.2),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx", "sse",
                   "sse2", "sse3", "ssse3", "sse4_1", "sse4_2", "popcnt"),
)
