"""AMD machine descriptions: K8 (Opteron) and K10 (Istanbul).

The K10 Istanbul node is the paper's second STREAM testbed (Figs 9/10):
two hexacore 2.6 GHz sockets, no SMT, exclusive L2 caches and a shared
6 MB L3 per socket.  AMD parts expose cache geometry through the
0x8000000x CPUID leaves and have four symmetric performance counters
with no fixed counters — so measuring CPI costs two general-purpose
counters, unlike Intel.
"""

from __future__ import annotations

from repro.hw.arch.common import amd_events
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf

_AMD_PMU = PmuSpec(num_pmcs=4, has_fixed=False, vendor_amd=True)

AMD_K8 = ArchSpec(
    name="amd_k8",
    cpu_name="AMD Opteron 275 (K8) processor",
    vendor="AuthenticAMD",
    family=0xF, model=0x21, stepping=2,
    clock_hz=2.2e9,
    sockets=2, cores_per_socket=2, threads_per_core=1,
    core_ids=(0, 1),
    caches=(
        CacheSpec(1, "Data cache", 64 * 1024, 2, 64, inclusive=False,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 64 * 1024, 2, 64, inclusive=False,
                  threads_sharing=1),
        CacheSpec(2, "Unified cache", 1024 * 1024, 16, 64,
                  inclusive=False, threads_sharing=1),
    ),
    pmu=_AMD_PMU,
    events=amd_events("amd_k8"),
    cpuid_style="amd",
    perf=MachinePerf(socket_mem_bw=6.0e9, thread_mem_bw=4.0e9,
                     socket_l3_bw=20.0e9, thread_l3_bw=12.0e9,
                     remote_mem_penalty=0.7, smt_issue_scale=1.0),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2", "sse3"),
)

AMD_ISTANBUL = ArchSpec(
    name="amd_istanbul",
    cpu_name="AMD Opteron 2435 (Istanbul) processor",
    vendor="AuthenticAMD",
    family=0x10, model=0x08, stepping=0,
    clock_hz=2.6e9,
    sockets=2, cores_per_socket=6, threads_per_core=1,
    core_ids=(0, 1, 2, 3, 4, 5),
    caches=(
        CacheSpec(1, "Data cache", 64 * 1024, 2, 64, inclusive=False,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 64 * 1024, 2, 64, inclusive=False,
                  threads_sharing=1),
        CacheSpec(2, "Unified cache", 512 * 1024, 16, 64,
                  inclusive=False, threads_sharing=1),
        CacheSpec(3, "Unified cache", 6 * 1024 * 1024, 48, 64,
                  inclusive=False, threads_sharing=6),
    ),
    pmu=_AMD_PMU,
    events=amd_events("amd_istanbul", has_l3=True),
    cpuid_style="amd",
    # Calibrated for Figs 9/10: ~12.5 GB/s per socket, ~25 GB/s across
    # the node; a single thread extracts noticeably less, and there is
    # no SMT so the thread count axis stops at 12.
    perf=MachinePerf(socket_mem_bw=12.5e9, thread_mem_bw=5.8e9,
                     socket_l3_bw=35.0e9, thread_l3_bw=10.0e9,
                     remote_mem_penalty=0.65, smt_issue_scale=1.0),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2", "sse3", "popcnt"),
)
