"""Small Intel parts from the paper's supported-architecture list:
Atom (Bonnell, SMT but single core) and Pentium M (Dothan, the legacy
part whose cache parameters come from the CPUID leaf 0x2 descriptor
table rather than deterministic cache parameters).
"""

from __future__ import annotations

from repro.hw.arch.common import atom_events, nehalem_events, pentium_m_events
from repro.hw.pmu import PmuSpec
from repro.hw.spec import ArchSpec, CacheSpec, MachinePerf


def _nehalem_ws_events():
    return nehalem_events("nehalem_ws")

ATOM = ArchSpec(
    name="atom",
    cpu_name="Intel Atom N270 processor",
    vendor="GenuineIntel",
    family=6, model=0x1C, stepping=2,
    clock_hz=1.6e9,
    sockets=1, cores_per_socket=1, threads_per_core=2,
    core_ids=(0,),
    caches=(
        CacheSpec(1, "Data cache", 24 * 1024, 6, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(2, "Unified cache", 512 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
    ),
    pmu=PmuSpec(num_pmcs=2, has_fixed=True),
    events=atom_events(),
    cpuid_style="leaf4",
    perf=MachinePerf(socket_mem_bw=2.5e9, thread_mem_bw=1.8e9,
                     socket_l3_bw=8.0e9, thread_l3_bw=6.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.3),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2", "sse3", "ssse3"),
)

NEHALEM_WS = ArchSpec(
    name="nehalem_ws",
    cpu_name="Intel Core i7-920 (Nehalem) processor",
    vendor="GenuineIntel",
    family=6, model=0x1A, stepping=4,
    clock_hz=2.66e9,
    sockets=1, cores_per_socket=4, threads_per_core=2,
    core_ids=(0, 1, 2, 3),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(1, "Instruction cache", 32 * 1024, 4, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(2, "Unified cache", 256 * 1024, 8, 64, inclusive=True,
                  threads_sharing=2),
        CacheSpec(3, "Unified cache", 8 * 1024 * 1024, 16, 64,
                  inclusive=True, threads_sharing=8),
    ),
    pmu=PmuSpec(num_pmcs=4, has_fixed=True, num_uncore_pmcs=8,
                has_uncore_fixed=True),
    events=_nehalem_ws_events(),
    cpuid_style="leaf11",
    perf=MachinePerf(socket_mem_bw=16.0e9, thread_mem_bw=8.5e9,
                     socket_l3_bw=70.0e9, thread_l3_bw=18.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.2),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx", "sse",
                   "sse2", "sse3", "ssse3", "sse4_1", "sse4_2", "popcnt"),
)

PENTIUM_M = ArchSpec(
    name="pentium_m",
    cpu_name="Intel Pentium M (Dothan) processor",
    vendor="GenuineIntel",
    family=6, model=0x0D, stepping=6,
    clock_hz=1.6e9,
    sockets=1, cores_per_socket=1, threads_per_core=1,
    core_ids=(0,),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(2, "Unified cache", 2 * 1024 * 1024, 8, 64,
                  inclusive=True, threads_sharing=1),
    ),
    pmu=PmuSpec(num_pmcs=2, has_fixed=False),
    events=pentium_m_events(),
    cpuid_style="legacy",
    perf=MachinePerf(socket_mem_bw=2.0e9, thread_mem_bw=2.0e9,
                     socket_l3_bw=6.0e9, thread_l3_bw=6.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.0),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2"),
    # Descriptor bytes for L1d 32k/8w (0x2C), L1i 32k/8w (0x30),
    # L2 2M/8w (0x7D) — decoded via the LEAF2_TABLE lookup.
    leaf2_descriptors=(0x2C, 0x30, 0x7D),
)

BANIAS = ArchSpec(
    name="banias",
    cpu_name="Intel Pentium M (Banias) processor",
    vendor="GenuineIntel",
    family=6, model=0x09, stepping=5,
    clock_hz=1.3e9,
    sockets=1, cores_per_socket=1, threads_per_core=1,
    core_ids=(0,),
    caches=(
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(1, "Instruction cache", 32 * 1024, 8, 64, inclusive=True,
                  threads_sharing=1),
        CacheSpec(2, "Unified cache", 1024 * 1024, 8, 64,
                  inclusive=True, threads_sharing=1),
    ),
    pmu=PmuSpec(num_pmcs=2, has_fixed=False),
    events=pentium_m_events(),
    cpuid_style="legacy",
    perf=MachinePerf(socket_mem_bw=1.6e9, thread_mem_bw=1.6e9,
                     socket_l3_bw=5.0e9, thread_l3_bw=5.0e9,
                     remote_mem_penalty=1.0, smt_issue_scale=1.0),
    feature_flags=("fpu", "tsc", "msr", "apic", "cmov", "mmx",
                   "sse", "sse2"),
    # L1d/L1i 32k/8w (0x2C/0x30), L2 1M/8w (0x7C).
    leaf2_descriptors=(0x2C, 0x30, 0x7C),
)
