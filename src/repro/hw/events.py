"""Performance event definitions.

Events are the per-architecture vocabulary of likwid-perfctr: names
like ``SIMD_COMP_INST_RETIRED_PACKED_DOUBLE`` map to an event number
plus unit mask programmed into a PERFEVTSEL register, with constraints
on which counters can host them.

Each event also carries a *channel*: the semantic quantity the
simulated execution engine produces (e.g. ``flops_packed_dp``,
``l3_lines_in``).  On real hardware the channel is implicit in the
silicon; in the simulator it is the bridge between workload execution
and counter increments.  Channels with socket scope (uncore) are
accumulated per socket rather than per hardware thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import EventError


class CounterScope(Enum):
    """Where a counter lives: core-private or socket-wide uncore."""

    CORE = "core"
    UNCORE = "uncore"


class Channel(str, Enum):
    """Semantic event sources produced by simulated execution.

    Core-scope channels accumulate per hardware thread; uncore-scope
    channels (the ``UNC_*`` family) accumulate per socket.
    """

    INSTRUCTIONS = "instructions"
    CORE_CYCLES = "core_cycles"
    REF_CYCLES = "ref_cycles"
    FLOPS_PACKED_DP = "flops_packed_dp"
    FLOPS_SCALAR_DP = "flops_scalar_dp"
    FLOPS_PACKED_SP = "flops_packed_sp"
    FLOPS_SCALAR_SP = "flops_scalar_sp"
    LOADS = "loads"
    STORES = "stores"
    L1D_REPLACEMENT = "l1d_replacement"
    L1D_EVICT = "l1d_evict"
    L2_LINES_IN = "l2_lines_in"
    L2_LINES_OUT = "l2_lines_out"
    L2_REQUESTS = "l2_requests"
    L2_MISSES = "l2_misses"
    L3_REQUESTS = "l3_requests"
    L3_MISSES = "l3_misses"
    # L3 fills attributed to the requesting core (AMD K10 NB events).
    L3_LINES_IN_CORE = "l3_lines_in_core"
    BRANCHES = "branches"
    BRANCH_MISSES = "branch_misses"
    DTLB_MISSES = "dtlb_misses"
    NT_STORES = "nt_stores"
    # DRAM traffic attributed to the requesting core (AMD northbridge
    # events and Core 2 front-side-bus events are counted core-side).
    DRAM_READS = "dram_reads"
    DRAM_WRITES = "dram_writes"
    # Uncore (socket scope)
    UNC_CYCLES = "unc_cycles"
    L3_LINES_IN = "l3_lines_in"
    L3_LINES_OUT = "l3_lines_out"
    UNC_L3_HITS = "unc_l3_hits"
    UNC_L3_MISSES = "unc_l3_misses"
    MEM_READS = "mem_reads"
    MEM_WRITES = "mem_writes"


UNCORE_CHANNELS = frozenset({
    Channel.UNC_CYCLES, Channel.L3_LINES_IN, Channel.L3_LINES_OUT,
    Channel.UNC_L3_HITS, Channel.UNC_L3_MISSES,
    Channel.MEM_READS, Channel.MEM_WRITES,
})


@dataclass(frozen=True)
class EventDef:
    """One countable hardware event on a given architecture."""

    name: str
    event_code: int
    umask: int
    channel: Channel
    scope: CounterScope = CounterScope.CORE
    fixed_index: int | None = None   # hosted on fixed counter N (Intel)
    counter_mask: frozenset[int] | None = None  # restricted PMC indices

    @property
    def is_fixed(self) -> bool:
        return self.fixed_index is not None

    def allowed_on(self, pmc_index: int) -> bool:
        """True if this event may be programmed on general counter N."""
        if self.is_fixed:
            return False
        return self.counter_mask is None or pmc_index in self.counter_mask


@dataclass
class EventTable:
    """Name → EventDef mapping for one architecture."""

    arch: str
    _events: dict[str, EventDef] = field(default_factory=dict)

    def add(self, event: EventDef) -> None:
        if event.name in self._events:
            raise EventError(f"duplicate event {event.name} on {self.arch}")
        self._events[event.name] = event

    def add_all(self, events: list[EventDef]) -> None:
        for ev in events:
            self.add(ev)

    def __contains__(self, name: str) -> bool:
        return name in self._events

    def __len__(self) -> int:
        return len(self._events)

    def lookup(self, name: str) -> EventDef:
        try:
            return self._events[name]
        except KeyError:
            raise EventError(f"unknown event {name!r} on {self.arch}") from None

    def names(self) -> list[str]:
        return sorted(self._events)

    def by_encoding(self, event_code: int, umask: int,
                    scope: CounterScope = CounterScope.CORE) -> EventDef | None:
        """Reverse lookup used by the PMU when counting: which event is
        currently programmed into a PERFEVTSEL register?"""
        for ev in self._events.values():
            if (ev.event_code == event_code and ev.umask == umask
                    and ev.scope == scope and not ev.is_fixed):
                return ev
        return None
