"""MSR register file: the per-core model-specific register space.

On real hardware MSRs are accessed with the RDMSR/WRMSR instructions
(or, from user space, through the ``msr`` kernel module's device
files).  Here each simulated hardware thread owns an :class:`MSRSpace`
holding 64-bit registers at sparse addresses.  Registers must be
*declared* before use — reading or writing an undeclared address
raises :class:`~repro.errors.MsrError`, mirroring the #GP fault an
unsupported MSR access causes on hardware.

Registers can be declared with a write mask (reserved bits are
preserved on write) and with read/write hooks so the PMU can react to
control-register updates.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import MsrError

U64_MASK = (1 << 64) - 1


@dataclass
class MsrRegister:
    """One 64-bit register: value, writable-bit mask, and hooks."""

    address: int
    value: int = 0
    write_mask: int = U64_MASK
    read_hook: Callable[[int], int] | None = None
    write_hook: Callable[[int, int], None] | None = None
    name: str = ""


@dataclass
class MSRSpace:
    """Sparse 64-bit register file for one hardware thread.

    The PMU declares its counter and control registers here; the
    OS-level msr driver (``repro.oskern.msr_driver``) exposes this
    space as a device file.
    """

    hwthread: int = 0
    _regs: dict[int, MsrRegister] = field(default_factory=dict)

    def declare(self, address: int, *, reset: int = 0,
                write_mask: int = U64_MASK, name: str = "",
                read_hook: Callable[[int], int] | None = None,
                write_hook: Callable[[int, int], None] | None = None) -> MsrRegister:
        """Register an MSR at *address*.  Re-declaring raises."""
        if address in self._regs:
            raise MsrError(f"MSR 0x{address:X} already declared on thread {self.hwthread}")
        reg = MsrRegister(address, reset & U64_MASK, write_mask & U64_MASK,
                          read_hook, write_hook, name or f"MSR_{address:X}")
        self._regs[address] = reg
        return reg

    def declared(self, address: int) -> bool:
        """True if *address* exists in this register file."""
        return address in self._regs

    def addresses(self) -> list[int]:
        """All declared addresses, sorted."""
        return sorted(self._regs)

    def _reg(self, address: int) -> MsrRegister:
        try:
            return self._regs[address]
        except KeyError:
            raise MsrError(
                f"rdmsr/wrmsr to undeclared MSR 0x{address:X} "
                f"on hwthread {self.hwthread} (#GP)"
            ) from None

    def read(self, address: int) -> int:
        """RDMSR: return the 64-bit value at *address*."""
        reg = self._reg(address)
        if reg.read_hook is not None:
            reg.value = reg.read_hook(reg.value) & U64_MASK
        return reg.value

    def write(self, address: int, value: int) -> None:
        """WRMSR: store *value*, preserving bits outside the write mask."""
        if not 0 <= value <= U64_MASK:
            raise MsrError(f"wrmsr value out of 64-bit range: {value!r}")
        reg = self._reg(address)
        new = (reg.value & ~reg.write_mask) | (value & reg.write_mask)
        reg.value = new & U64_MASK
        if reg.write_hook is not None:
            reg.write_hook(address, reg.value)

    def poke(self, address: int, value: int) -> None:
        """Hardware-internal update bypassing the write mask and hooks.

        Used by the PMU when a counter increments: hardware can always
        change its own registers.
        """
        self._reg(address).value = value & U64_MASK

    def peek(self, address: int) -> int:
        """Hardware-internal read bypassing hooks."""
        return self._reg(address).value
