"""APIC ID composition and decomposition.

x86 encodes a hardware thread's position in the machine inside its
APIC ID as packed bit fields::

    | package id | core id | SMT id |

The field widths come from CPUID (leaf 0xB on Nehalem+, derived from
leaves 0x1/0x4 on older parts).  Crucially, the *core id* field is not
necessarily dense: on Westmere EP hexacore parts the six cores carry
ids 0, 1, 2, 8, 9, 10 — which is why likwid-topology must decode the
fields rather than assume consecutive numbering, and why this module
exists as a faithful substrate.
"""

from __future__ import annotations

from dataclasses import dataclass


def field_width(max_value: int) -> int:
    """Number of bits needed to represent ids ``0..max_value``.

    This matches the hardware rule: the SMT field is wide enough for
    the largest SMT id, the core field for the largest core id, both
    rounded up to whole bits (ceil(log2(max_value+1)))."""
    if max_value < 0:
        raise ValueError(f"max_value must be >= 0, got {max_value}")
    width = 0
    while (1 << width) <= max_value:
        width += 1
    return width


@dataclass(frozen=True)
class ApicLayout:
    """Bit-field layout of the APIC ID for one processor model."""

    smt_bits: int
    core_bits: int

    @property
    def core_shift(self) -> int:
        return self.smt_bits

    @property
    def package_shift(self) -> int:
        return self.smt_bits + self.core_bits

    def compose(self, package: int, core: int, smt: int) -> int:
        """Pack (package, core, smt) into an APIC ID."""
        if smt >= (1 << self.smt_bits) and self.smt_bits >= 0 and smt != 0:
            raise ValueError(f"smt id {smt} does not fit in {self.smt_bits} bits")
        if core >= (1 << self.core_bits):
            raise ValueError(f"core id {core} does not fit in {self.core_bits} bits")
        return (package << self.package_shift) | (core << self.core_shift) | smt

    def decompose(self, apic_id: int) -> tuple[int, int, int]:
        """Unpack an APIC ID into (package, core, smt)."""
        smt = apic_id & ((1 << self.smt_bits) - 1)
        core = (apic_id >> self.core_shift) & ((1 << self.core_bits) - 1)
        package = apic_id >> self.package_shift
        return package, core, smt


def layout_for(max_smt_id: int, max_core_id: int) -> ApicLayout:
    """Construct the layout covering the given maximum field values."""
    return ApicLayout(field_width(max_smt_id), field_width(max_core_id))
