"""CPUID instruction emulation.

Encodes an :class:`~repro.hw.spec.ArchSpec` into the register quadruples
the real ``cpuid`` instruction returns, per hardware thread.  The
likwid-topology engine (:mod:`repro.core.topology`) then *decodes* these
registers with the same bit-field arithmetic the original C tool uses —
encode and decode are written independently so the decode path is a real
test of the topology logic, not a table lookup.

Supported leaves (matching the paper's description of the probing
methods):

* ``0x0``   — max leaf + vendor string
* ``0x1``   — signature (family/model/stepping), APIC id, HTT,
  logical processors per package, feature flags
* ``0x2``   — legacy cache descriptor table (Pentium M)
* ``0x4``   — deterministic cache parameters (Core 2 onward)
* ``0xB``   — x2APIC extended topology (Nehalem onward)
* ``0x80000000`` — max extended leaf
* ``0x80000002-4`` — processor brand string
* ``0x80000005/6`` — AMD L1 / L2+L3 cache descriptors
* ``0x80000008`` — AMD core count / APIC id size
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import CpuidError
from repro.hw.spec import ArchSpec, CacheSpec


@dataclass(frozen=True)
class CpuidResult:
    eax: int
    ebx: int
    ecx: int
    edx: int

    def as_tuple(self) -> tuple[int, int, int, int]:
        return (self.eax, self.ebx, self.ecx, self.edx)


# -- feature flag bit positions (leaf 1) ------------------------------------

EDX_FLAGS = {"fpu": 0, "tsc": 4, "msr": 5, "apic": 9, "cmov": 15,
             "mmx": 23, "sse": 25, "sse2": 26, "htt": 28}
ECX_FLAGS = {"sse3": 0, "ssse3": 9, "sse4_1": 19, "sse4_2": 20,
             "popcnt": 23, "x2apic": 21}

# -- legacy leaf 0x2 cache descriptors (subset used by Pentium M) ------------

@dataclass(frozen=True)
class Leaf2Descriptor:
    level: int
    type: str
    size: int
    associativity: int
    line_size: int


LEAF2_TABLE: dict[int, Leaf2Descriptor] = {
    0x2C: Leaf2Descriptor(1, "Data cache", 32 * 1024, 8, 64),
    0x30: Leaf2Descriptor(1, "Instruction cache", 32 * 1024, 8, 64),
    0x7D: Leaf2Descriptor(2, "Unified cache", 2 * 1024 * 1024, 8, 64),
    0x7C: Leaf2Descriptor(2, "Unified cache", 1024 * 1024, 8, 64),
    0x0A: Leaf2Descriptor(1, "Data cache", 8 * 1024, 2, 32),
    0x08: Leaf2Descriptor(1, "Instruction cache", 16 * 1024, 4, 32),
}

CACHE_TYPE_CODES = {"Data cache": 1, "Instruction cache": 2, "Unified cache": 3}
CACHE_TYPE_NAMES = {v: k for k, v in CACHE_TYPE_CODES.items()}

# AMD leaf 0x80000006 associativity encoding (L2/L3 field).
AMD_ASSOC_CODES = {1: 0x1, 2: 0x2, 4: 0x4, 8: 0x6, 16: 0x8, 32: 0xA,
                   48: 0xB, 64: 0xC, 96: 0xD, 128: 0xE}
AMD_ASSOC_DECODE = {v: k for k, v in AMD_ASSOC_CODES.items()}


def encode_signature(family: int, model: int, stepping: int) -> int:
    """Pack family/model/stepping into leaf-1 EAX, with the extended
    family/model fields used when family >= 0xF or family == 6."""
    base_family = min(family, 0xF)
    ext_family = family - base_family if family > 0xF else 0
    base_model = model & 0xF
    ext_model = (model >> 4) & 0xF
    return (stepping & 0xF) | (base_model << 4) | (base_family << 8) \
        | (ext_model << 16) | (ext_family << 20)


def decode_signature(eax: int) -> tuple[int, int, int]:
    """Unpack leaf-1 EAX into (family, model, stepping)."""
    stepping = eax & 0xF
    base_model = (eax >> 4) & 0xF
    base_family = (eax >> 8) & 0xF
    ext_model = (eax >> 16) & 0xF
    ext_family = (eax >> 20) & 0xFF
    family = base_family + ext_family if base_family == 0xF else base_family
    model = (ext_model << 4) | base_model if base_family in (0x6, 0xF) else base_model
    return family, model, stepping


def _pack12(text: str) -> tuple[int, int, int]:
    raw = text.encode("ascii")
    if len(raw) != 12:
        raise CpuidError(f"vendor string must be 12 chars: {text!r}")
    return struct.unpack("<III", raw)


class CpuidEngine:
    """Per-machine CPUID responder."""

    def __init__(self, spec: ArchSpec):
        self.spec = spec
        self._max_leaf = {"leaf11": 0xB, "leaf4": 0xA,
                          "legacy": 0x2, "amd": 0x1}[spec.cpuid_style]
        self._max_ext_leaf = 0x80000008 if spec.cpuid_style == "amd" else 0x80000004

    # ----------------------------------------------------------------------

    def cpuid(self, hwthread: int, leaf: int, subleaf: int = 0) -> CpuidResult:
        """Execute CPUID on a given hardware thread."""
        spec = self.spec
        if leaf == 0x0:
            b, d, c = _pack12(spec.vendor)
            return CpuidResult(self._max_leaf, b, c, d)
        if leaf == 0x80000000:
            return CpuidResult(self._max_ext_leaf, 0, 0, 0)
        if 0x80000002 <= leaf <= 0x80000004:
            return self._brand_string(leaf)
        if leaf == 0x1:
            return self._leaf1(hwthread)
        if leaf == 0x2 and spec.cpuid_style in ("legacy", "leaf4"):
            return self._leaf2()
        if leaf == 0x4 and spec.cpuid_style in ("leaf4", "leaf11"):
            return self._leaf4(subleaf)
        if leaf == 0xB and spec.cpuid_style == "leaf11":
            return self._leaf11(hwthread, subleaf)
        if leaf == 0x80000005 and spec.cpuid_style == "amd":
            return self._amd_l1()
        if leaf == 0x80000006 and spec.cpuid_style == "amd":
            return self._amd_l2_l3()
        if leaf == 0x80000008 and spec.cpuid_style == "amd":
            return self._amd_extended_topology()
        raise CpuidError(
            f"unsupported CPUID leaf 0x{leaf:X} on {spec.name} "
            f"(style {spec.cpuid_style})")

    # -- leaf implementations ----------------------------------------------

    def _brand_string(self, leaf: int) -> CpuidResult:
        raw = self.spec.cpu_name.encode("ascii")[:47].ljust(48, b"\0")
        offset = (leaf - 0x80000002) * 16
        a, b, c, d = struct.unpack("<IIII", raw[offset:offset + 16])
        return CpuidResult(a, b, c, d)

    def _leaf1(self, hwthread: int) -> CpuidResult:
        spec = self.spec
        eax = encode_signature(spec.family, spec.model, spec.stepping)
        apic_id = spec.apic_id(hwthread)
        # EBX[23:16]: maximum addressable logical processors per package.
        # Hardware reports the *field capacity*, i.e. including APIC id
        # holes — that is why topology code cannot trust it for counting.
        layout = spec.apic_layout
        logical_per_pkg = 1 << layout.package_shift
        ebx = (apic_id << 24) | ((logical_per_pkg & 0xFF) << 16)
        ecx = 0
        edx = 0
        for flag in spec.feature_flags:
            if flag in EDX_FLAGS:
                edx |= 1 << EDX_FLAGS[flag]
            elif flag in ECX_FLAGS:
                ecx |= 1 << ECX_FLAGS[flag]
        if spec.threads_per_socket > 1:
            edx |= 1 << EDX_FLAGS["htt"]
        return CpuidResult(eax, ebx, ecx, edx)

    def _leaf2(self) -> CpuidResult:
        descriptors = list(self.spec.leaf2_descriptors)
        if len(descriptors) > 15:
            raise CpuidError("leaf 0x2 supports at most 15 descriptors here")
        raw = bytes([0x01] + descriptors + [0x00] * (15 - len(descriptors)))
        a, b, c, d = struct.unpack("<IIII", raw)
        return CpuidResult(a, b, c, d)

    def _leaf4(self, subleaf: int) -> CpuidResult:
        spec = self.spec
        caches = sorted(spec.caches, key=lambda c: (c.level, c.type))
        if subleaf >= len(caches):
            return CpuidResult(0, 0, 0, 0)  # type 0 = no more caches
        cache = caches[subleaf]
        max_core_id_width = spec.apic_layout.core_bits
        eax = (CACHE_TYPE_CODES[cache.type]
               | (cache.level << 5)
               | (1 << 8)  # self-initialising
               | ((cache.threads_sharing - 1) << 14)
               | (((1 << max_core_id_width) - 1) << 26))
        ebx = ((cache.line_size - 1)
               | (0 << 12)  # partitions - 1
               | ((cache.associativity - 1) << 22))
        ecx = cache.sets - 1
        edx = 0x2 if cache.inclusive else 0x0
        return CpuidResult(eax, ebx, ecx, edx)

    def _leaf11(self, hwthread: int, subleaf: int) -> CpuidResult:
        spec = self.spec
        layout = spec.apic_layout
        x2apic = spec.apic_id(hwthread)
        if subleaf == 0:  # SMT level
            return CpuidResult(layout.smt_bits, spec.threads_per_core,
                               (1 << 8) | subleaf, x2apic)
        if subleaf == 1:  # Core level
            return CpuidResult(layout.package_shift, spec.threads_per_socket,
                               (2 << 8) | subleaf, x2apic)
        return CpuidResult(0, 0, subleaf, x2apic)  # invalid level: stop

    def _amd_l1(self) -> CpuidResult:
        l1d = self._find_cache(1, "Data cache")
        l1i = self._find_cache(1, "Instruction cache")
        ecx = ((l1d.size // 1024) << 24) | (l1d.associativity << 16) \
            | l1d.line_size if l1d else 0
        edx = ((l1i.size // 1024) << 24) | (l1i.associativity << 16) \
            | l1i.line_size if l1i else 0
        return CpuidResult(0, 0, ecx, edx)

    def _amd_l2_l3(self) -> CpuidResult:
        l2 = self._find_cache(2, "Unified cache")
        l3 = self._find_cache(3, "Unified cache")
        ecx = 0
        if l2:
            ecx = ((l2.size // 1024) << 16) \
                | (AMD_ASSOC_CODES[l2.associativity] << 12) | l2.line_size
        edx = 0
        if l3:
            edx = ((l3.size // (512 * 1024)) << 18) \
                | (AMD_ASSOC_CODES[l3.associativity] << 12) | l3.line_size
        return CpuidResult(0, 0, ecx, edx)

    def _amd_extended_topology(self) -> CpuidResult:
        spec = self.spec
        ecx = (spec.cores_per_socket - 1) & 0xFF
        ecx |= spec.apic_layout.package_shift << 12  # ApicIdCoreIdSize
        return CpuidResult(0, 0, ecx, 0)

    def _find_cache(self, level: int, type_: str) -> CacheSpec | None:
        for c in self.spec.caches:
            if c.level == level and c.type == type_:
                return c
        return None
