"""Architecture specification dataclasses.

An :class:`ArchSpec` is the single source of truth describing one of
the paper's machines (Westmere EP, Nehalem EP, Core 2, AMD Istanbul,
...).  Everything else derives from it: the CPUID tables encode it,
likwid-topology decodes it back, the scheduler uses its thread layout,
and the performance model uses its :class:`MachinePerf` parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.apic import ApicLayout, layout_for
from repro.hw.events import EventTable
from repro.hw.pmu import PmuSpec


@dataclass(frozen=True)
class CacheSpec:
    """One cache level as reported by CPUID leaf 0x4 / AMD ext leaves."""

    level: int
    type: str                # "Data cache", "Instruction cache", "Unified cache"
    size: int                # bytes
    associativity: int
    line_size: int = 64
    inclusive: bool = True
    threads_sharing: int = 1  # hardware threads sharing one instance

    @property
    def sets(self) -> int:
        return self.size // (self.associativity * self.line_size)

    @property
    def is_data(self) -> bool:
        return self.type in ("Data cache", "Unified cache")


@dataclass(frozen=True)
class MachinePerf:
    """Calibration parameters for the analytic performance model.

    These stand in for the physical memory subsystem of the paper's
    testbeds.  Values are chosen so the *shape* of the paper's results
    reproduces (saturation points, socket scaling, SMT behaviour);
    see DESIGN.md section 6.
    """

    # Sustained main-memory bandwidth of one socket with enough threads
    # (bytes/s) and the concurrency needed to reach it.
    socket_mem_bw: float = 20.0e9
    # Bandwidth a single in-flight thread can extract from the memory
    # controller (latency-limited; < socket_mem_bw).
    thread_mem_bw: float = 9.0e9
    # Shared last-level-cache bandwidth per socket (bytes/s).
    socket_l3_bw: float = 80.0e9
    # Per-core L3 bandwidth limit (one core cannot saturate the ring).
    thread_l3_bw: float = 24.0e9
    # ccNUMA: fraction of full bandwidth when accessing the remote socket.
    remote_mem_penalty: float = 0.55
    # Socket interconnect (QPI/HyperTransport): aggregate bandwidth cap
    # for all remote streams targeting one socket's memory (bytes/s).
    interconnect_bw: float = 11.0e9
    # SMT: issue-slot efficiency of 2 threads sharing one core relative
    # to one thread (1.0 = perfect doubling of issue resources).
    smt_issue_scale: float = 1.15
    # Per-core load/store path widths for cache-resident working sets,
    # used by the bandwidth-map microbenchmark (bytes per cycle).
    l1_bytes_per_cycle: float = 16.0
    l2_bytes_per_cycle: float = 8.0


@dataclass(frozen=True)
class ArchSpec:
    """Complete description of one simulated machine."""

    name: str                 # short key, e.g. "westmere_ep"
    cpu_name: str             # display string, e.g. "Intel Westmere EP processor"
    vendor: str               # "GenuineIntel" | "AuthenticAMD"
    family: int
    model: int
    stepping: int
    clock_hz: float
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    # Physical core ids inside the package (APIC core field); may be
    # non-contiguous, e.g. (0, 1, 2, 8, 9, 10) on Westmere EP hexacore.
    core_ids: tuple[int, ...]
    caches: tuple[CacheSpec, ...]
    pmu: PmuSpec
    events: EventTable
    cpuid_style: str          # "leaf11" | "leaf4" | "legacy" | "amd"
    perf: MachinePerf = field(default_factory=MachinePerf)
    numa_domains_per_socket: int = 1
    memory_per_socket: int = 12 * 1024**3  # bytes of DRAM per socket
    feature_flags: tuple[str, ...] = ()
    has_misc_enable: bool = False  # likwid-features support (Core 2 only)
    leaf2_descriptors: tuple[int, ...] = ()  # legacy cache descriptors
    dtlb_entries: int = 64         # second-level data-TLB entries
    page_size: int = 4096

    def __post_init__(self) -> None:
        if len(self.core_ids) != self.cores_per_socket:
            raise ValueError(
                f"{self.name}: core_ids has {len(self.core_ids)} entries "
                f"for {self.cores_per_socket} cores")

    # -- derived topology ---------------------------------------------------

    @property
    def threads_per_socket(self) -> int:
        return self.cores_per_socket * self.threads_per_core

    @property
    def num_hwthreads(self) -> int:
        return self.sockets * self.threads_per_socket

    @property
    def num_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def apic_layout(self) -> ApicLayout:
        return layout_for(self.threads_per_core - 1, max(self.core_ids))

    def hwthread_location(self, hwthread: int) -> tuple[int, int, int]:
        """Map an OS hardware-thread id to (socket, core_index, smt).

        The OS numbering follows the Linux convention seen in the
        paper's Westmere listing: all SMT-0 siblings first (socket 0's
        cores, then socket 1's, ...), then all SMT-1 siblings.
        """
        if not 0 <= hwthread < self.num_hwthreads:
            raise ValueError(f"hwthread {hwthread} out of range")
        smt, rest = divmod(hwthread, self.num_cores)
        socket, core_index = divmod(rest, self.cores_per_socket)
        return socket, core_index, smt

    def apic_id(self, hwthread: int) -> int:
        """APIC ID of an OS hardware thread."""
        socket, core_index, smt = self.hwthread_location(hwthread)
        return self.apic_layout.compose(socket, self.core_ids[core_index], smt)

    def hwthreads_of_core(self, socket: int, core_index: int) -> list[int]:
        """OS ids of all SMT siblings on one physical core."""
        return [smt * self.num_cores + socket * self.cores_per_socket + core_index
                for smt in range(self.threads_per_core)]

    def hwthreads_of_socket(self, socket: int) -> list[int]:
        """OS ids of all hardware threads on one socket."""
        out: list[int] = []
        for core_index in range(self.cores_per_socket):
            out.extend(self.hwthreads_of_core(socket, core_index))
        return out

    def socket_of(self, hwthread: int) -> int:
        return self.hwthread_location(hwthread)[0]

    def physical_core_of(self, hwthread: int) -> tuple[int, int]:
        """(socket, core_index) — identifies the physical core."""
        socket, core_index, _smt = self.hwthread_location(hwthread)
        return socket, core_index

    def scatter_order(self) -> list[int]:
        """Hardware threads ordered for "scatter" placement: round-robin
        across sockets, filling physical cores before SMT siblings —
        the distribution the paper uses for the pinned STREAM runs
        (Fig. 5) and the one KMP_AFFINITY=scatter produces."""
        order: list[int] = []
        for smt in range(self.threads_per_core):
            for core_index in range(self.cores_per_socket):
                for socket in range(self.sockets):
                    order.append(smt * self.num_cores
                                 + socket * self.cores_per_socket + core_index)
        return order

    def compact_order(self) -> list[int]:
        """Hardware threads ordered for "compact" placement: fill all
        SMT threads of a core, then the next core, then the next
        socket (KMP_AFFINITY=compact)."""
        order: list[int] = []
        for socket in range(self.sockets):
            for core_index in range(self.cores_per_socket):
                order.extend(self.hwthreads_of_core(socket, core_index))
        return order

    # -- ccNUMA -----------------------------------------------------------

    @property
    def num_numa_domains(self) -> int:
        return self.sockets * self.numa_domains_per_socket

    def numa_domain_of(self, hwthread: int) -> int:
        """NUMA domain id of a hardware thread: domains tile each
        socket over consecutive core indices."""
        socket, core_index, _smt = self.hwthread_location(hwthread)
        cores_per_domain = max(1, self.cores_per_socket
                               // self.numa_domains_per_socket)
        return (socket * self.numa_domains_per_socket
                + min(core_index // cores_per_domain,
                      self.numa_domains_per_socket - 1))

    def hwthreads_of_numa_domain(self, domain: int) -> list[int]:
        """Hardware threads of one NUMA domain, in core order with SMT
        siblings adjacent (the likwid-topology NUMA listing order)."""
        out: list[int] = []
        socket = domain // self.numa_domains_per_socket
        for core_index in range(self.cores_per_socket):
            for hw in self.hwthreads_of_core(socket, core_index):
                if self.numa_domain_of(hw) == domain:
                    out.append(hw)
        return out

    @property
    def memory_per_numa_domain(self) -> int:
        return self.memory_per_socket // self.numa_domains_per_socket

    def numa_distance(self, a: int, b: int) -> int:
        """ACPI SLIT-style distance: 10 local, 21 across sockets, 16
        between domains of one socket."""
        if a == b:
            return 10
        sock_a = a // self.numa_domains_per_socket
        sock_b = b // self.numa_domains_per_socket
        return 16 if sock_a == sock_b else 21

    def data_caches(self) -> tuple[CacheSpec, ...]:
        """Data and unified caches, ordered by level (likwid-topology
        omits instruction caches, as the paper notes)."""
        return tuple(sorted((c for c in self.caches if c.is_data),
                            key=lambda c: c.level))

    def last_level_cache(self) -> CacheSpec:
        return self.data_caches()[-1]
