"""likwid.h — the C marker API, verbatim (paper §II.A listing).

The paper's instrumentation example::

    #include <likwid.h>
    int coreID = likwid_processGetProcessorId();
    likwid_markerInit(numberOfThreads, numberOfRegions);
    int MainId = likwid_markerRegisterRegion("Main");
    likwid_markerStartRegion(0, coreID);
    ...
    likwid_markerStopRegion(0, coreID, MainId);
    likwid_markerClose();

This module exposes exactly those free functions.  In the real tool
the library discovers its configuration through environment variables
set by ``likwid-perfctr -m``; here :func:`likwid_markerBind` plays that
role, binding the process to a started
:class:`~repro.core.perfctr.measurement.PerfCtrSession` and to the OS
instance whose scheduler answers ``likwid_processGetProcessorId``.

Also provided are the likwid API's pinning helpers
(``likwid_pinProcess`` / ``likwid_pinThread``), which the paper's
library offers "to determine the core ID of processes or threads" and
bind them.

The binding state lives in a :class:`LikwidSession`.  The C-style free
functions delegate to one module-level default session (faithful to
the real library's process-global state), but independent sessions can
be created directly — e.g. to instrument two simulated processes side
by side — and :func:`likwid_bound` scopes a binding to a ``with``
block, restoring whatever was bound before on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.perfctr.marker import MarkerAPI
from repro.core.perfctr.measurement import PerfCtrSession
from repro.errors import MarkerError
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread


class LikwidSession:
    """One binding of the likwid API: a marker session, the OS instance
    answering scheduling queries, and the current calling thread.

    Mirrors every ``likwid_*`` free function as a snake_case method;
    the free functions are thin delegates to the default session.
    """

    def __init__(self) -> None:
        self._marker: MarkerAPI | None = None
        self._kernel: OSKernel | None = None
        self._calling: SimThread | None = None

    # -- binding -------------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self._marker is not None

    def bind(self, session: PerfCtrSession, kernel: OSKernel,
             calling_thread: SimThread) -> None:
        """Bind to a measurement session and the calling thread (the
        simulation's stand-in for the env-var handshake the real
        likwid-perfctr -m performs with the instrumented binary)."""
        self._marker = MarkerAPI(session)
        self._kernel = kernel
        self._calling = calling_thread

    def unbind(self) -> None:
        """Reset the session state (process exit)."""
        self._marker = None
        self._kernel = None
        self._calling = None

    def _require_marker(self) -> MarkerAPI:
        if self._marker is None:
            raise MarkerError("likwid marker API not bound "
                              "(call likwid_markerBind first)")
        return self._marker

    def _require_kernel(self) -> OSKernel:
        if self._kernel is None:
            raise MarkerError("likwid API not bound to an OS instance")
        return self._kernel

    def set_calling_thread(self, thread: SimThread) -> None:
        """Switch the simulated "calling thread" (each simulated thread
        calls this before using the API, standing in for real TLS)."""
        self._calling = thread

    # -- the C API, as methods -----------------------------------------------

    def process_get_processor_id(self) -> int:
        """Core id the calling thread currently runs on."""
        kernel = self._require_kernel()
        if self._calling is None:
            raise MarkerError("no calling thread bound")
        if self._calling.hwthread is None:
            kernel.place_thread(self._calling.tid)
        return int(self._calling.hwthread)  # type: ignore[arg-type]

    def pin_process(self, cpu: int) -> int:
        """Pin the calling process to one core; returns 0 on success."""
        kernel = self._require_kernel()
        if self._calling is None:
            raise MarkerError("no calling thread bound")
        kernel.sched_setaffinity(self._calling.tid, {cpu})
        kernel.place_thread(self._calling.tid)
        return 0

    def pin_thread(self, cpu: int) -> int:
        """Alias for :meth:`pin_process` at thread granularity."""
        return self.pin_process(cpu)

    def marker_init(self, number_of_threads: int,
                    number_of_regions: int) -> None:
        self._require_marker().likwid_markerInit(number_of_threads,
                                                 number_of_regions)

    def marker_register_region(self, name: str) -> int:
        return self._require_marker().likwid_markerRegisterRegion(name)

    def marker_start_region(self, thread_id: int, core_id: int) -> None:
        self._require_marker().likwid_markerStartRegion(thread_id, core_id)

    def marker_stop_region(self, thread_id: int, core_id: int,
                           region_id: int) -> None:
        self._require_marker().likwid_markerStopRegion(thread_id, core_id,
                                                       region_id)

    def marker_close(self) -> None:
        self._require_marker().likwid_markerClose()

    def marker_results(self) -> MarkerAPI:
        """Access the accumulated region results (the tool side reads
        these after the application exits)."""
        return self._require_marker()


#: The process-global session the C-style free functions operate on.
_default = LikwidSession()


def default_session() -> LikwidSession:
    """The session backing the module-level free functions."""
    return _default


@contextmanager
def likwid_bound(session: PerfCtrSession, kernel: OSKernel,
                 calling_thread: SimThread) -> Iterator[LikwidSession]:
    """Bind the default session for the duration of a ``with`` block.

    Whatever binding existed before (including none) is restored on
    exit, so nested instrumented scopes compose.
    """
    prior = (_default._marker, _default._kernel, _default._calling)
    _default.bind(session, kernel, calling_thread)
    try:
        yield _default
    finally:
        _default._marker, _default._kernel, _default._calling = prior


# -- the C API ---------------------------------------------------------------

def likwid_markerBind(session: PerfCtrSession, kernel: OSKernel,
                      calling_thread: SimThread) -> None:
    """Bind the API to a measurement session and the calling thread
    (the simulation's stand-in for the env-var handshake the real
    likwid-perfctr -m performs with the instrumented binary)."""
    _default.bind(session, kernel, calling_thread)


def likwid_markerUnbind() -> None:
    """Reset module state (process exit)."""
    _default.unbind()


def likwid_setCallingThread(thread: SimThread) -> None:
    """Switch the simulated "calling thread" (each simulated thread
    calls this before using the API, standing in for real TLS)."""
    _default.set_calling_thread(thread)


def likwid_processGetProcessorId() -> int:
    """Core id the calling thread currently runs on."""
    return _default.process_get_processor_id()


def likwid_pinProcess(cpu: int) -> int:
    """Pin the calling process to one core; returns 0 on success."""
    return _default.pin_process(cpu)


def likwid_pinThread(cpu: int) -> int:
    """Alias for pinProcess at thread granularity."""
    return _default.pin_thread(cpu)


def likwid_markerInit(number_of_threads: int, number_of_regions: int) -> None:
    _default.marker_init(number_of_threads, number_of_regions)


def likwid_markerRegisterRegion(name: str) -> int:
    return _default.marker_register_region(name)


def likwid_markerStartRegion(thread_id: int, core_id: int) -> None:
    _default.marker_start_region(thread_id, core_id)


def likwid_markerStopRegion(thread_id: int, core_id: int,
                            region_id: int) -> None:
    _default.marker_stop_region(thread_id, core_id, region_id)


def likwid_markerClose() -> None:
    _default.marker_close()


def likwid_markerResults() -> MarkerAPI:
    """Access the accumulated region results (the tool side reads
    these after the application exits)."""
    return _default.marker_results()
