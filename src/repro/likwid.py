"""likwid.h — the C marker API, verbatim (paper §II.A listing).

The paper's instrumentation example::

    #include <likwid.h>
    int coreID = likwid_processGetProcessorId();
    likwid_markerInit(numberOfThreads, numberOfRegions);
    int MainId = likwid_markerRegisterRegion("Main");
    likwid_markerStartRegion(0, coreID);
    ...
    likwid_markerStopRegion(0, coreID, MainId);
    likwid_markerClose();

This module exposes exactly those free functions.  In the real tool
the library discovers its configuration through environment variables
set by ``likwid-perfctr -m``; here :func:`likwid_markerBind` plays that
role, binding the process to a started
:class:`~repro.core.perfctr.measurement.PerfCtrSession` and to the OS
instance whose scheduler answers ``likwid_processGetProcessorId``.

Also provided are the likwid API's pinning helpers
(``likwid_pinProcess`` / ``likwid_pinThread``), which the paper's
library offers "to determine the core ID of processes or threads" and
bind them.
"""

from __future__ import annotations

from repro.core.perfctr.marker import MarkerAPI
from repro.core.perfctr.measurement import PerfCtrSession
from repro.errors import MarkerError
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread

_marker: MarkerAPI | None = None
_kernel: OSKernel | None = None
_calling: SimThread | None = None


def likwid_markerBind(session: PerfCtrSession, kernel: OSKernel,
                      calling_thread: SimThread) -> None:
    """Bind the API to a measurement session and the calling thread
    (the simulation's stand-in for the env-var handshake the real
    likwid-perfctr -m performs with the instrumented binary)."""
    global _marker, _kernel, _calling
    _marker = MarkerAPI(session)
    _kernel = kernel
    _calling = calling_thread


def likwid_markerUnbind() -> None:
    """Reset module state (process exit)."""
    global _marker, _kernel, _calling
    _marker = None
    _kernel = None
    _calling = None


def _require_marker() -> MarkerAPI:
    if _marker is None:
        raise MarkerError("likwid marker API not bound "
                          "(call likwid_markerBind first)")
    return _marker


def _require_kernel() -> OSKernel:
    if _kernel is None:
        raise MarkerError("likwid API not bound to an OS instance")
    return _kernel


def likwid_setCallingThread(thread: SimThread) -> None:
    """Switch the simulated "calling thread" (each simulated thread
    calls this before using the API, standing in for real TLS)."""
    global _calling
    _calling = thread


# -- the C API ---------------------------------------------------------------

def likwid_processGetProcessorId() -> int:
    """Core id the calling thread currently runs on."""
    kernel = _require_kernel()
    if _calling is None:
        raise MarkerError("no calling thread bound")
    if _calling.hwthread is None:
        kernel.place_thread(_calling.tid)
    return int(_calling.hwthread)  # type: ignore[arg-type]


def likwid_pinProcess(cpu: int) -> int:
    """Pin the calling process to one core; returns 0 on success."""
    kernel = _require_kernel()
    if _calling is None:
        raise MarkerError("no calling thread bound")
    kernel.sched_setaffinity(_calling.tid, {cpu})
    kernel.place_thread(_calling.tid)
    return 0


def likwid_pinThread(cpu: int) -> int:
    """Alias for pinProcess at thread granularity."""
    return likwid_pinProcess(cpu)


def likwid_markerInit(number_of_threads: int, number_of_regions: int) -> None:
    _require_marker().likwid_markerInit(number_of_threads, number_of_regions)


def likwid_markerRegisterRegion(name: str) -> int:
    return _require_marker().likwid_markerRegisterRegion(name)


def likwid_markerStartRegion(thread_id: int, core_id: int) -> None:
    _require_marker().likwid_markerStartRegion(thread_id, core_id)


def likwid_markerStopRegion(thread_id: int, core_id: int,
                            region_id: int) -> None:
    _require_marker().likwid_markerStopRegion(thread_id, core_id, region_id)


def likwid_markerClose() -> None:
    _require_marker().likwid_markerClose()


def likwid_markerResults() -> MarkerAPI:
    """Access the accumulated region results (the tool side reads
    these after the application exits)."""
    return _require_marker()
