"""Orphaned-state recovery: replay the journal, reclaim stale locks.

A crashed (killed) tool run leaves three things behind: mutated MSR
state on every cpu it touched, socket locks owned by a dead pid, and
the write-ahead journal recording exactly what was mutated.  The
recovery engine — ``likwid-perfctr --recover`` / ``likwid-features
--recover`` on the CLI — undoes all of it:

1. **Scan** the journal, validating checksums.  A torn tail record is
   truncated (write-ahead ordering guarantees its MSR write never
   happened); corruption anywhere earlier raises
   :class:`~repro.errors.JournalCorruptError` and nothing is touched
   — mis-restoring is worse than reporting 'unrecoverable'.
2. **Replay backwards**: walk the write records newest-to-oldest,
   restoring each register's before-value.  The earliest record per
   register is applied last, so the end state is bit-identical to the
   pristine pre-session state no matter how many times a register was
   rewritten.  Restores go through the machine's register file with
   normal write semantics (write masks preserved, control-register
   hooks fire), bypassing the fault-injection dice — the recovery
   path is the driver's own crash-consistency machinery, not tool
   I/O.
3. **Reclaim stale locks**: every socket lock — from the journal's
   outstanding lock records and the in-process table — whose owner
   pid is dead is force-released; a lock with a *live* owner is left
   alone (that session is still measuring).
4. **Retire** the journal.

Metrics: ``recover.restored``, ``recover.stale_locks_reclaimed``
(shared with the acquisition-time steal path) and
``journal.torn_records_truncated`` flow into the same registry as
every other ``repro.trace`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import trace as _trace
from repro.errors import JournalError
from repro.oskern.journal import OP_WRITE
from repro.oskern.msr_driver import MsrDriver


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    scanned_records: int = 0
    restored_writes: int = 0
    stale_locks_reclaimed: int = 0
    live_locks_left: int = 0
    torn_bytes_dropped: int = 0
    epochs_seen: tuple[int, ...] = ()
    registers: list[tuple[int, int, int]] = field(default_factory=list)
    # (cpu, address, restored value) in restore order

    @property
    def clean(self) -> bool:
        """Nothing was dirty: no writes undone, no locks reclaimed."""
        return self.restored_writes == 0 \
            and self.stale_locks_reclaimed == 0

    def summary(self) -> str:
        if self.clean:
            return ("journal clean: no orphaned msr state, "
                    "no stale socket locks")
        parts = [f"restored {self.restored_writes} msr write(s) "
                 f"across {len({(c, a) for c, a, _ in self.registers})} "
                 f"register(s)",
                 f"reclaimed {self.stale_locks_reclaimed} stale "
                 f"socket lock(s)"]
        if self.torn_bytes_dropped:
            parts.append(f"truncated {self.torn_bytes_dropped} torn "
                         f"tail byte(s)")
        if self.live_locks_left:
            parts.append(f"left {self.live_locks_left} lock(s) with "
                         f"live owners untouched")
        return "; ".join(parts)


class RecoveryEngine:
    """Replays a driver's journal backwards and reclaims stale locks."""

    def __init__(self, driver: MsrDriver):
        self.driver = driver

    def recover(self) -> RecoveryReport:
        """One full recovery pass; raises
        :class:`~repro.errors.JournalCorruptError` on a journal whose
        history cannot be trusted (the CLI's 'unrecoverable' exit)."""
        driver = self.driver
        if not driver.process_alive:
            raise JournalError(
                "recovery must run from a live process "
                "(driver.respawn() first)")
        with _trace.span("recover.run"):
            return self._recover_inner()

    def _recover_inner(self) -> RecoveryReport:
        driver = self.driver
        metrics = driver.metrics
        report = RecoveryReport()
        journal = driver.journal

        scan = None
        if journal is not None:
            scan = journal.scan()       # raises JournalCorruptError
            report.scanned_records = len(scan.records)
            report.torn_bytes_dropped = scan.torn_bytes
            report.epochs_seen = tuple(sorted(
                {r.epoch for r in scan.records}))

        # Backwards replay: newest record first, so the earliest
        # (pristine) before-value of each register lands last.
        if scan is not None:
            machine = driver.machine
            for rec in reversed(scan.records):
                if rec.op != OP_WRITE:
                    continue
                space = machine.msr[rec.cpu]
                if space.peek(rec.address) == rec.before:
                    continue    # unchanged (or the record's write was
                    # never acted on) — replaying would be a no-op
                space.write(rec.address, rec.before)
                report.restored_writes += 1
                report.registers.append(
                    (rec.cpu, rec.address, rec.before))
                metrics.incr("recover.restored")

        # Stale-lock reclaim over the union of journal-derived
        # outstanding locks (a crashed process's locks may exist only
        # in its journal) and the in-process lock table.
        report = self._reclaim(scan, report)

        if journal is not None:
            journal.clear()
        return report

    def _reclaim(self, scan, report: RecoveryReport) -> RecoveryReport:
        driver = self.driver
        metrics = driver.metrics
        # Union of journal-derived and in-table locks, keyed by socket.
        outstanding: dict[int, tuple[int, int]] = {}
        if scan is not None:
            outstanding.update(scan.outstanding_locks())
        for socket, lock in driver.locks.held().items():
            outstanding[socket] = (lock.owner_pid, lock.epoch)
        for socket, (pid, _epoch) in sorted(outstanding.items()):
            if driver.procs.alive(pid):
                report.live_locks_left += 1
                continue
            driver.locks.force_release(socket)
            report.stale_locks_reclaimed += 1
            metrics.incr("recover.stale_locks_reclaimed")
        return report


def recover(driver: MsrDriver) -> RecoveryReport:
    """Convenience one-shot: ``recover(driver)``."""
    return RecoveryEngine(driver).recover()
