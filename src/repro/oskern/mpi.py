"""Simulated MPI launching for hybrid MPI+OpenMP pinning (paper §II.C).

The paper's hybrid example::

    $ export OMP_NUM_THREADS=8
    $ mpiexec -n 64 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out

"would start 64 MPI processes on 64 nodes (via the -pernode option)
with eight threads each, and not bind the first two newly created
threads" — the Intel MPI progress thread plus the Intel OpenMP
shepherd, which is why the hybrid skip mask is 0x3.

This module provides a :class:`SimCluster` of identical simulated
nodes and an :class:`MpiExec` launcher that starts one process per
rank; the MPI library model creates its progress thread at
``MPI_Init`` (the *first* thread a rank creates), before the OpenMP
runtime spawns its team.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.hw.arch import create_machine
from repro.hw.machine import SimMachine
from repro.oskern.openmp import OpenMPRuntime, Team
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread, ThreadKind


@dataclass
class SimNode:
    """One cluster node: a machine plus its OS instance."""

    index: int
    machine: SimMachine
    kernel: OSKernel


class SimCluster:
    """A homogeneous cluster of simulated shared-memory nodes."""

    def __init__(self, arch: str, num_nodes: int, *, seed: int = 0):
        if num_nodes < 1:
            raise SchedulerError("cluster needs at least one node")
        self.nodes = []
        for index in range(num_nodes):
            machine = create_machine(arch)
            kernel = OSKernel(machine, seed=seed + index * 104729)
            self.nodes.append(SimNode(index, machine, kernel))

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class MpiRank:
    """One launched MPI process."""

    rank: int
    node: SimNode
    master: SimThread
    progress_thread: SimThread | None = None
    team: Team | None = None

    @property
    def compute_threads(self) -> list[SimThread]:
        return self.team.compute_threads if self.team else [self.master]


@dataclass
class MpiExec:
    """The mpiexec launcher bound to a cluster.

    *mpi_model* 'intel' spawns a progress (shepherd) thread at
    MPI_Init; 'mpich-sock' style implementations without a progress
    thread are modelled with 'none'.
    """

    cluster: SimCluster
    mpi_model: str = "intel"
    ranks: list[MpiRank] = field(default_factory=list)

    def run(self, nranks: int, *, pernode: bool = False,
            setup=None) -> list[MpiRank]:
        """Launch *nranks* processes round-robin (or one per node).

        *setup(kernel) -> master_thread* stands for whatever wrapper
        starts the rank's binary — e.g. ``LikwidPin.launch`` — and must
        return the process's master thread.  After the master starts,
        MPI_Init runs (possibly creating the progress thread), then the
        caller attaches an OpenMP team via :meth:`spawn_team`.
        """
        if pernode and nranks > len(self.cluster):
            raise SchedulerError(
                f"-pernode with {nranks} ranks needs {nranks} nodes, "
                f"cluster has {len(self.cluster)}")
        self.ranks = []
        for rank in range(nranks):
            node = self.cluster.nodes[rank if pernode
                                      else rank % len(self.cluster)]
            if setup is not None:
                master = setup(node.kernel)
            else:
                master = node.kernel.spawn_process(f"rank-{rank}")
            progress = None
            if self.mpi_model == "intel":
                # MPI_Init: the library's progress/shepherd thread is
                # the first thread the process creates.
                progress = node.kernel.pthread_create(
                    ThreadKind.SHEPHERD, f"mpi-progress-{rank}")
            self.ranks.append(MpiRank(rank, node, master, progress))
        return self.ranks

    def spawn_teams(self, omp_threads: int,
                    omp_model: str = "intel") -> None:
        """Open the OpenMP parallel region inside every rank."""
        for mpi_rank in self.ranks:
            runtime = OpenMPRuntime(mpi_rank.node.kernel, omp_model)
            mpi_rank.team = runtime.spawn_team(omp_threads,
                                               master=mpi_rank.master)

    def place_all(self) -> None:
        for node in self.cluster.nodes:
            node.kernel.place_all()
