"""A perf_event-style access backend.

Models the three semantics that distinguish the kernel's perf_event
interface from LIKWID's direct-MSR path ("Measuring Software
Performance on Linux", PAPERS.md):

* **fd-per-event**: every event→counter binding becomes a
  :class:`PerfEvent` with its own fd number and lifetime, rather than
  a register the tool owns outright.
* **kernel-side multiplexing**: when the requested events need the
  same physical counter, the "kernel" splits them into conflict-free
  sets and rotates the sets on every scheduler tick
  (:meth:`SimMachine.add_tick_hook`), accumulating per-event
  ``time_enabled``/``time_running``.  Reads extrapolate the counted
  slice to the full window: ``count * time_enabled / time_running``.
* **rdpmc userspace reads**: core counters are read straight from the
  register file (:meth:`MSRSpace.peek`), never through the device
  node — a read costs no device op and cannot take a device fault.

Programming still flows through the shared journaled
:class:`CounterProgrammer`: the simulated kernel's perf subsystem
writes the same PMU registers through the same crash-safe driver, so
fault plans, kills, and journal recovery behave identically under
both backends.

Uncore counters have no rdpmc and no per-event rotation here (as on
real hardware, where uncore PMUs are a separate perf subsystem); they
use the kernel-mediated defaults from :class:`AccessBackend`.
"""

from __future__ import annotations

from repro.oskern.access.base import AccessBackend, BackendCapabilities


class PerfEvent:
    """One fd's worth of perf_event state."""

    __slots__ = ("fd", "assignment", "value", "time_enabled",
                 "time_running")

    def __init__(self, fd: int, assignment):
        self.fd = fd
        self.assignment = assignment
        self.value = 0          # counts harvested from retired slices
        self.time_enabled = 0.0
        self.time_running = 0.0

    def scaled(self, residue: int) -> float:
        """The kernel's extrapolation: observed counts scaled by the
        fraction of the window the event was actually scheduled.

        An event that was enabled but never scheduled onto a counter
        (``time_running == 0`` with ``time_enabled > 0`` — rotation
        starvation) cannot have observed anything; the kernel reports
        0 for it, and so do we, even if stale residue sits on the
        physical counter.  An event that was never even enabled
        (both times zero) passes its raw total through: that is the
        baseline-snapshot path, which must see preloaded counter
        state as-is."""
        total = self.value + residue
        if self.time_running <= 0.0:
            if self.time_enabled > 0.0:
                return 0.0
            return 0.0 if total == 0 else float(total)
        return total * (self.time_enabled / self.time_running)


class _CpuContext:
    """Per-CPU event list, conflict-free sets, and rotation cursor."""

    __slots__ = ("events", "sets", "active", "enabled", "rotations")

    def __init__(self, events, sets):
        self.events = events
        self.sets = sets        # list[list[PerfEvent]]
        self.active = 0
        self.enabled = False
        self.rotations = 0

    def active_assignments(self):
        return [ev.assignment for ev in self.sets[self.active]]

    @property
    def multiplexed(self) -> bool:
        return len(self.sets) > 1


def split_conflicts(assignments) -> list[list]:
    """Greedy first-fit split into sets with no counter claimed twice —
    the kernel scheduler's grouping of incompatible events."""
    sets: list[list] = []
    for a in assignments:
        for group in sets:
            if all(b.counter.name != a.counter.name for b in group):
                group.append(a)
                break
        else:
            sets.append([a])
    return sets


class PerfEventBackend(AccessBackend):
    """Counter access through a modeled perf_event kernel interface."""

    capabilities = BackendCapabilities(
        name="perf",
        direct_msr=False,
        kernel_multiplexing=True,
        userspace_read=True,
        needs_socket_locks=False,  # the kernel arbitrates uncore access
        feature_control=False,
    )

    def __init__(self, driver):
        super().__init__(driver)
        self._cpus: dict[int, _CpuContext] = {}
        self._next_fd = 3
        self._hooked = False

    # -- session binding ---------------------------------------------------

    def _attached(self, counters) -> None:
        self._unhook()
        self._cpus.clear()

    def release(self) -> None:
        self._unhook()
        self._cpus.clear()

    def _unhook(self) -> None:
        if self._hooked:
            self.machine.remove_tick_hook(self._tick)
            self._hooked = False

    # -- core counters -----------------------------------------------------

    def program_core(self, cpu: int, assignments) -> None:
        core = [a for a in assignments if not a.counter.is_uncore]
        events = []
        for a in core:
            events.append(PerfEvent(self._next_fd, a))
            self._next_fd += 1
        sets = split_conflicts(core)
        fd_sets = [[ev for ev in events if ev.assignment in group]
                   for group in sets]
        self._cpus[cpu] = ctx = _CpuContext(events, fd_sets)
        self._programmer.setup_core(cpu, ctx.active_assignments())

    def start_core(self, cpu: int, assignments) -> None:
        ctx = self._cpus[cpu]
        ctx.enabled = True
        self._programmer.start_core(cpu, ctx.active_assignments())
        if not self._hooked:
            self.machine.add_tick_hook(self._tick)
            self._hooked = True

    def stop_core(self, cpu: int, assignments) -> None:
        ctx = self._cpus.get(cpu)
        if ctx is None:
            # Teardown of a CPU that never got programmed.
            self._programmer.stop_core(cpu, assignments)
            return
        ctx.enabled = False
        self._programmer.stop_core(cpu, ctx.active_assignments())

    def read_batch(self, cpu: int, assignments) -> dict:
        """rdpmc read of one CPU's core counters (no device ops).

        Multiplexed values are scaled estimates and therefore floats;
        an un-multiplexed context returns the exact raw counts, so an
        in-capacity measurement agrees with the msr backend bit for
        bit.  With duplicate counter claims the per-fd view is
        :meth:`read_events`; here the last fd on a counter wins.
        """
        ctx = self._cpus.get(cpu)
        if ctx is None:
            return {}
        peek = self.machine.msr[cpu].peek
        self._driver.metrics.incr("perf.rdpmc_reads")
        out: dict = {}
        for ev in ctx.events:
            residue = peek(ev.assignment.counter.counter_addr) \
                if ev in ctx.sets[ctx.active] else 0
            if ctx.multiplexed:
                out[ev.assignment.counter.name] = ev.scaled(residue)
            else:
                out[ev.assignment.counter.name] = ev.value + residue
        return out

    def read_events(self, cpu: int) -> list[dict]:
        """The fd-level read format: one record per event with the raw
        count, the scaling times, and the extrapolated estimate."""
        ctx = self._cpus.get(cpu)
        if ctx is None:
            return []
        peek = self.machine.msr[cpu].peek
        records = []
        for ev in ctx.events:
            residue = peek(ev.assignment.counter.counter_addr) \
                if ev in ctx.sets[ctx.active] else 0
            records.append({
                "fd": ev.fd,
                "event": ev.assignment.event.name,
                "counter": ev.assignment.counter.name,
                "raw": ev.value + residue,
                "time_enabled": ev.time_enabled,
                "time_running": ev.time_running,
                "scaled": ev.scaled(residue),
            })
        return records

    def rotations(self, cpu: int) -> int:
        ctx = self._cpus.get(cpu)
        return ctx.rotations if ctx is not None else 0

    # -- the kernel's scheduler tick ---------------------------------------

    def _tick(self, elapsed_seconds: float) -> None:
        # Timeless slices (pure event injection) still advance the
        # rotation clock by one nominal tick so rotation makes
        # progress; any real elapsed time is used as-is.
        dt = elapsed_seconds if elapsed_seconds > 0.0 else 1.0
        for cpu, ctx in self._cpus.items():
            if not ctx.enabled:
                continue
            for ev in ctx.events:
                ev.time_enabled += dt
            for ev in ctx.sets[ctx.active]:
                ev.time_running += dt
            if ctx.multiplexed:
                self._rotate(cpu, ctx)

    def _rotate(self, cpu: int, ctx: _CpuContext) -> None:
        """Retire the active set (harvest its counts) and schedule the
        next one — journaled register writes, like the real kernel's
        PMU writes on a rotation interrupt."""
        peek = self.machine.msr[cpu].peek
        for ev in ctx.sets[ctx.active]:
            ev.value += peek(ev.assignment.counter.counter_addr)
        self._programmer.stop_core(cpu, ctx.active_assignments())
        ctx.active = (ctx.active + 1) % len(ctx.sets)
        nxt = ctx.active_assignments()
        self._programmer.setup_core(cpu, nxt)
        self._programmer.start_core(cpu, nxt)
        ctx.rotations += 1
        self._driver.metrics.incr("perf.rotations")
