"""The pluggable counter-access interface (ISSUE 6 tentpole).

LIKWID's design point is talking to the msr device files directly, but
"Measuring Software Performance on Linux" (PAPERS.md) contrasts that
with the kernel's perf_event interface: fd-per-event lifetimes,
kernel-side multiplexing with ``time_enabled``/``time_running``
scaling, and rdpmc userspace reads.  :class:`AccessBackend` is the
seam between the two: the tool layer (``repro.core.perfctr`` and the
CLI front-ends) programs *events onto counters* through this API and
never needs to know which access path carries the register traffic.

Both implementations sit on top of the same :class:`MsrDriver` — the
simulated kernel's perf subsystem ultimately programs the same PMU
registers — so the write-ahead journal, fault injection, and crash
recovery of PR 5 apply to every backend identically.

Layering note: the backends build a
:class:`~repro.core.perfctr.counters.CounterProgrammer` lazily inside
:meth:`attach`.  The import direction (oskern → core) is deliberate
and confined to that method: the programmer is the one event-level
engine both access paths share, and importing it at call time keeps
``repro.oskern`` importable standalone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class BackendCapabilities:
    """What one access path can and cannot do (docs/access-modes.md)."""

    name: str
    direct_msr: bool           # raw register handles via open_core()
    kernel_multiplexing: bool  # oversubscribed event sets are rotated
    userspace_read: bool       # rdpmc-style reads bypass the device
    needs_socket_locks: bool   # tool arbitrates uncore access itself
    feature_control: bool      # may toggle IA32_MISC_ENABLE features


class AccessBackend(ABC):
    """One way of reaching the counters of a simulated machine.

    The life cycle mirrors a perfctr session: :meth:`attach` binds the
    backend to one session's counter map (resetting per-session
    state), then per CPU ``program → start → [read_batch ...] → stop``,
    and finally :meth:`release`.  Uncore programming is kernel-mediated
    on every backend and shares the default implementations here.
    """

    capabilities: BackendCapabilities

    def __init__(self, driver):
        self._driver = driver
        self._programmer = None

    # -- identity ----------------------------------------------------------

    @property
    def driver(self):
        """The msr driver carrying this backend's register traffic."""
        return self._driver

    @property
    def machine(self):
        return self._driver.machine

    @property
    def programmer(self):
        """The shared event-level programming engine (bound by attach)."""
        return self._programmer

    @property
    def retries(self) -> int:
        return self._programmer.retries if self._programmer is not None else 0

    # -- session binding ---------------------------------------------------

    def attach(self, counters, *, retry_policy=None) -> None:
        """Bind to one session's :class:`CounterMap`; resets any
        per-session backend state left by a previous session."""
        from repro.core.perfctr.counters import CounterProgrammer
        self._programmer = CounterProgrammer(
            self._driver, counters, retry_policy)
        self._attached(counters)

    def _attached(self, counters) -> None:
        """Subclass hook: per-session state reset."""

    def release(self) -> None:
        """Drop per-session resources (fds, tick hooks); the driver
        itself stays open for the next session."""

    # -- raw access --------------------------------------------------------

    def open_core(self, cpu: int, *, write: bool = True):
        """A raw device handle for one CPU (direct-msr capability)."""
        return self._driver.open(cpu, write=write)

    def write_surface(self) -> frozenset[int]:
        """Every register address this backend may legitimately mutate
        on its machine — the journal's write-surface classification."""
        from repro.oskern.journal import state_mutating_addresses
        return state_mutating_addresses(self._driver.machine.spec)

    # -- core counters -----------------------------------------------------

    @abstractmethod
    def program_core(self, cpu: int, assignments) -> None:
        """Write event selections and zero the involved counters."""

    @abstractmethod
    def start_core(self, cpu: int, assignments) -> None:
        """Enable counting on one CPU."""

    @abstractmethod
    def stop_core(self, cpu: int, assignments) -> None:
        """Freeze counting on one CPU."""

    @abstractmethod
    def read_batch(self, cpu: int, assignments) -> dict:
        """Read the core-scope counters; keys are counter names."""

    # -- uncore counters (kernel-mediated on every backend) ----------------

    def program_uncore(self, cpu: int, assignments) -> None:
        self._programmer.setup_uncore(cpu, assignments)

    def start_uncore(self, cpu: int, assignments) -> None:
        self._programmer.start_uncore(cpu, assignments)

    def stop_uncore(self, cpu: int) -> None:
        self._programmer.stop_uncore(cpu)

    def read_uncore_batch(self, cpu: int, assignments) -> dict:
        return self._programmer.read_uncore(cpu, assignments)
