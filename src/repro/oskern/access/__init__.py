"""Pluggable counter-access backends (ISSUE 6).

``open_backend`` is the tool layer's one entry point: it owns msr
driver construction, so CLI code never instantiates
:class:`MsrDriver` directly (statically enforced by the LK503 lint,
the backend-API sibling of LK501's raw-write scan).
"""

from __future__ import annotations

from repro.oskern.access.base import AccessBackend, BackendCapabilities
from repro.oskern.access.msr import MsrBackend
from repro.oskern.access.perf import PerfEventBackend

ACCESS_MODES = ("msr", "perf")

_BACKENDS = {"msr": MsrBackend, "perf": PerfEventBackend}


def backend_for(mode: str, driver) -> AccessBackend:
    """Wrap an existing driver in the backend class for *mode*."""
    try:
        cls = _BACKENDS[mode]
    except KeyError:
        raise ValueError(
            f"unknown access mode {mode!r} "
            f"(choose from {', '.join(ACCESS_MODES)})") from None
    return cls(driver)


def open_backend(mode: str, machine, *, driver=None, faults=None,
                 journal=None, journaling: bool = True,
                 procs=None, locks=None) -> AccessBackend:
    """Open counter access to *machine* through one access mode.

    Builds the journaled msr driver internally unless an existing one
    is passed in; the remaining keywords mirror the driver's crash-
    safety knobs (``--journal`` / ``--no-journal`` / ``--msr-faults``).
    ``procs``/``locks`` share one process table and socket-lock table
    across many drivers over the same machine — the concurrent-session
    server opens one driver per granted session, all arbitrating the
    same per-socket lock state (ISSUE 9).
    """
    if driver is None:
        from repro.oskern.msr_driver import MsrDriver
        driver = MsrDriver(machine, faults=faults, journal=journal,
                           journaling=journaling, procs=procs,
                           locks=locks)
    return backend_for(mode, driver)


__all__ = [
    "ACCESS_MODES",
    "AccessBackend",
    "BackendCapabilities",
    "MsrBackend",
    "PerfEventBackend",
    "backend_for",
    "open_backend",
]
