"""The direct-MSR access backend: LIKWID's native path.

A thin adapter putting the existing journaled
:class:`CounterProgrammer` behind the :class:`AccessBackend` API.  The
programmer's fast-path bound methods (``journaled_write`` without a
fault plan, ``read_msr`` without tracing) are untouched, so the <5%
journal-overhead and <2% trace-overhead gates hold unchanged.
"""

from __future__ import annotations

from repro.oskern.access.base import AccessBackend, BackendCapabilities


class MsrBackend(AccessBackend):
    """Program and read counters through /dev/cpu/N/msr directly."""

    capabilities = BackendCapabilities(
        name="msr",
        direct_msr=True,
        kernel_multiplexing=False,
        userspace_read=False,
        needs_socket_locks=True,
        feature_control=True,
    )

    def program_core(self, cpu: int, assignments) -> None:
        self._programmer.setup_core(cpu, assignments)

    def start_core(self, cpu: int, assignments) -> None:
        self._programmer.start_core(cpu, assignments)

    def stop_core(self, cpu: int, assignments) -> None:
        self._programmer.stop_core(cpu, assignments)

    def read_batch(self, cpu: int, assignments) -> dict:
        return self._programmer.read_core(cpu, assignments)
