"""Thread table for the simulated OS kernel.

Threads carry the attributes the LIKWID pinning machinery cares about:
an affinity mask (``sched_setaffinity`` semantics), a *kind* that
distinguishes compute threads from OpenMP/MPI management ("shepherd")
threads, and their creation order — the quantity likwid-pin's skip
mask is defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ThreadKind(Enum):
    MASTER = "master"       # the initial process thread
    WORKER = "worker"       # a compute thread
    SHEPHERD = "shepherd"   # OpenMP/MPI management thread (never computes)


@dataclass
class SimThread:
    """One schedulable thread."""

    tid: int
    kind: ThreadKind
    creation_index: int          # 0 for master, then pthread_create order
    affinity: frozenset[int] | None = None  # None = may run anywhere
    hwthread: int | None = None  # current placement (set by the scheduler)
    memory_socket: int | None = None  # ccNUMA home of its data (first touch)
    name: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def pinned(self) -> bool:
        """True when the affinity mask allows exactly one hardware thread."""
        return self.affinity is not None and len(self.affinity) == 1

    @property
    def computes(self) -> bool:
        return self.kind is not ThreadKind.SHEPHERD
