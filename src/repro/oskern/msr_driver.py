"""The Linux ``msr`` kernel module, simulated.

likwid-perfCtr "uses the Linux msr module to modify the MSRs from user
space.  The msr module ... implements the read/write access to MSRs
based on device files" (paper, §II.A).  This module reproduces that
interface: per-CPU device files ``/dev/cpu/N/msr`` supporting 8-byte
pread/pwrite at the file offset equal to the register address.

The module must be *loaded* before device files can be opened, and
opening requires root unless the device permissions were relaxed —
the two installation stumbling blocks the real tool documents.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import MsrError
from repro.hw.machine import SimMachine


@dataclass
class DriverStats:
    """Access accounting: the basis of the tool's low-overhead claim —
    a measurement costs a fixed number of device-file operations, not
    anything proportional to the application's runtime."""

    opens: int = 0
    reads: int = 0
    writes: int = 0

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.opens = self.reads = self.writes = 0


class MsrFile:
    """An open ``/dev/cpu/N/msr`` file descriptor."""

    def __init__(self, machine: SimMachine, cpu: int, writable: bool,
                 stats: DriverStats | None = None):
        self._machine = machine
        self.cpu = cpu
        self.writable = writable
        self.closed = False
        self._stats = stats

    def _check_open(self) -> None:
        if self.closed:
            raise MsrError(f"I/O on closed msr device for cpu {self.cpu}")

    def pread(self, address: int) -> bytes:
        """Read 8 bytes at offset *address* (one RDMSR)."""
        self._check_open()
        if self._stats is not None:
            self._stats.reads += 1
        return struct.pack("<Q", self._machine.rdmsr(self.cpu, address))

    def pwrite(self, address: int, data: bytes) -> None:
        """Write 8 bytes at offset *address* (one WRMSR)."""
        self._check_open()
        if not self.writable:
            raise MsrError(f"msr device for cpu {self.cpu} opened read-only")
        if len(data) != 8:
            raise MsrError(f"msr writes must be 8 bytes, got {len(data)}")
        if self._stats is not None:
            self._stats.writes += 1
        self._machine.wrmsr(self.cpu, address, struct.unpack("<Q", data)[0])

    # Convenience integer forms used by the tool layer.

    def read_msr(self, address: int) -> int:
        return struct.unpack("<Q", self.pread(address))[0]

    def write_msr(self, address: int, value: int) -> None:
        self.pwrite(address, struct.pack("<Q", value & (2**64 - 1)))

    def close(self) -> None:
        self.closed = True


class MsrDriver:
    """The msr kernel module: loadable, with device-node permissions."""

    def __init__(self, machine: SimMachine, *, loaded: bool = True,
                 device_writable: bool = True):
        self.machine = machine
        self.loaded = loaded
        self.device_writable = device_writable
        self.stats = DriverStats()

    def load(self) -> None:
        """modprobe msr"""
        self.loaded = True

    def unload(self) -> None:
        self.loaded = False

    def open(self, cpu: int, *, write: bool = True) -> MsrFile:
        """Open ``/dev/cpu/<cpu>/msr``."""
        if not self.loaded:
            raise MsrError(
                "msr module not loaded: /dev/cpu/*/msr does not exist "
                "(run 'modprobe msr')")
        if not 0 <= cpu < self.machine.num_hwthreads:
            raise MsrError(f"no such device /dev/cpu/{cpu}/msr")
        if write and not self.device_writable:
            raise MsrError(
                f"permission denied opening /dev/cpu/{cpu}/msr for writing")
        self.stats.opens += 1
        return MsrFile(self.machine, cpu, writable=write, stats=self.stats)
