"""The Linux ``msr`` kernel module, simulated.

likwid-perfCtr "uses the Linux msr module to modify the MSRs from user
space.  The msr module ... implements the read/write access to MSRs
based on device files" (paper, §II.A).  This module reproduces that
interface: per-CPU device files ``/dev/cpu/N/msr`` supporting 8-byte
pread/pwrite at the file offset equal to the register address.

The module must be *loaded* before device files can be opened, and
opening requires root unless the device permissions were relaxed —
the two installation stumbling blocks the real tool documents.

Beyond the happy path, the driver can *inject faults*: a seeded,
deterministic :class:`FaultPlan` reproduces the failure modes a
long-running monitoring daemon sees in the field — transient
``EAGAIN``/``EIO`` on pread/pwrite, the module being unloaded under an
open file, device permissions flipping mid-run, addresses going
permanently bad, and counters forced to overflow after a programmable
number of events.  The perfctr runtime is hardened against all of
them (see :mod:`repro.core.perfctr.measurement`).
"""

from __future__ import annotations

import random
import struct
import time as _time
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.errors import (JournalError, MsrError, MsrIOError,
                          MsrPermissionError, ProcessKilled,
                          SimulatedInterrupt)
from repro.hw.machine import SimMachine
from repro.oskern.journal import MsrJournal, state_mutating_addresses
from repro.oskern.locks import SocketLockTable
from repro.oskern.proc import SimProcessTable
from repro.trace.metrics import MetricsRegistry


@dataclass
class DriverStats:
    """Access accounting: the basis of the tool's low-overhead claim —
    a measurement costs a fixed number of device-file operations, not
    anything proportional to the application's runtime.

    ``opens``/``closes`` make handle leaks observable (a resilient
    runtime must end a run with ``live_handles == 0`` even when the
    workload raised); ``faults`` counts injected failures so retry
    behaviour can be asserted on."""

    opens: int = 0
    reads: int = 0
    writes: int = 0
    closes: int = 0
    faults: int = 0

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    @property
    def live_handles(self) -> int:
        """Currently open device files (leak detector)."""
        return self.opens - self.closes

    def reset(self) -> None:
        self.opens = self.reads = self.writes = 0
        self.closes = self.faults = 0


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seedable schedule of msr-driver faults.

    All randomness comes from one ``random.Random(seed)`` stream that
    advances once per fault decision, so a given plan against a given
    operation sequence always injects the same faults — tests and the
    fault-injection CI job are exactly reproducible.

    Fault kinds (all independent, all optional):

    * ``read_fault_rate`` / ``write_fault_rate`` — probability that a
      pread/pwrite raises a *transient* fault (``transient_errno``,
      default ``EAGAIN``).  Retrying the operation draws fresh
      randomness and will eventually succeed.
    * ``unload_after`` — after this many device operations (opens +
      reads + writes) the module behaves as if ``rmmod msr`` ran:
      new opens fail, and I/O on already-open files raises a
      non-transient ``ENODEV``.
    * ``revoke_write_after`` — after this many operations the device
      nodes lose write permission; new writable opens raise
      :class:`~repro.errors.MsrPermissionError` (already-open files
      keep their access mode, like real fds).
    * ``sticky_addresses`` — offsets that permanently fail with a
      non-transient ``EIO`` (a broken register, in effect).
    * ``overflow_after`` — whenever the tool layer zeroes a counter
      register, preload it with ``2**width - overflow_after`` instead,
      so the counter overflows (wraps past zero) after that many
      events — the standard trick for forcing mid-run wrap-around.
    * ``kill_after`` — after this many device operations the tool
      *process model dies* (SIGKILL semantics): the operation raises
      :class:`~repro.errors.ProcessKilled`, the driver's pid is marked
      dead, and **every** later driver call raises the same — no
      teardown runs, MSR state stays dirty, socket locks stay held and
      the write-ahead journal stays orphaned.  Recovery is the job of
      a *new* process (``driver.respawn()`` + the recovery engine, or
      ``--recover`` on the CLI).  Fires once.
    * ``sigint_after`` — after this many operations the process model
      receives a simulated SIGINT: the operation raises
      :class:`~repro.errors.SimulatedInterrupt`, which propagates
      through the session context managers so the *graceful* teardown
      path runs (counters disabled, locks released, journal retired).
      Fires once; teardown's own device operations proceed normally.
    """

    seed: int = 0
    read_fault_rate: float = 0.0
    write_fault_rate: float = 0.0
    transient_errno: str = "EAGAIN"
    unload_after: int | None = None
    revoke_write_after: int | None = None
    sticky_addresses: tuple[int, ...] = ()
    overflow_after: int | None = None
    kill_after: int | None = None
    sigint_after: int | None = None

    def __post_init__(self) -> None:
        for name in ("read_fault_rate", "write_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.transient_errno not in ("EAGAIN", "EIO"):
            raise ValueError(
                f"transient_errno must be EAGAIN or EIO, "
                f"got {self.transient_errno!r}")
        if self.overflow_after is not None and self.overflow_after < 1:
            raise ValueError("overflow_after must be >= 1")
        for name in ("kill_after", "sigint_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1")

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse the CLI syntax: comma-separated ``key=value`` pairs.

        Keys are the field names (``sticky`` may repeat and accepts
        hex addresses; any other repeated key is rejected rather than
        silently keeping the last value)::

            seed=7,read_fault_rate=0.1
            unload_after=20
            sticky=0x38F,sticky=0xC1
            overflow_after=1000
        """
        kwargs: dict = {}
        sticky: list[int] = []
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(f"bad fault spec {part!r} (need key=value)")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key not in ("sticky", "sticky_addresses") and key in kwargs:
                raise ValueError(f"duplicate fault key {key!r}")
            if key in ("sticky", "sticky_addresses"):
                sticky.append(int(value, 0))
            elif key in ("read_fault_rate", "write_fault_rate"):
                kwargs[key] = float(value)
            elif key in ("seed", "unload_after", "revoke_write_after",
                         "overflow_after", "kill_after", "sigint_after"):
                kwargs[key] = int(value, 0)
            elif key == "transient_errno":
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault key {key!r}")
        if sticky:
            kwargs["sticky_addresses"] = tuple(sticky)
        return cls(**kwargs)


@dataclass
class _FaultState:
    """Mutable per-driver state of an armed FaultPlan."""

    plan: FaultPlan
    rng: random.Random
    op_count: int = 0
    sticky: frozenset = field(default_factory=frozenset)
    kill_fired: bool = False
    sigint_fired: bool = False


class MsrFile:
    """An open ``/dev/cpu/N/msr`` file descriptor."""

    def __init__(self, driver: "MsrDriver", cpu: int, writable: bool):
        self._driver = driver
        self._machine = driver.machine
        self.cpu = cpu
        self.writable = writable
        self.closed = False
        self._stats = driver.stats
        # Bound-method caches for the journaled-write hot path (the
        # journal and register space never change under an open fd).
        self._peek = driver.machine.msr[cpu].peek
        self._mutable = driver.mutable_addresses
        self._record_write = driver.journal.record_write \
            if driver.journal is not None else None

    def _check_open(self) -> None:
        self._driver._check_process()
        if self.closed:
            raise MsrError(f"I/O on closed msr device for cpu {self.cpu}")
        if not self._driver.loaded:
            raise MsrIOError(
                "ENODEV",
                f"msr module unloaded under open device for cpu {self.cpu}",
                cpu=self.cpu)

    def pread(self, address: int) -> bytes:
        """Read 8 bytes at offset *address* (one RDMSR)."""
        self._check_open()
        tracer = _trace.TRACER
        if not tracer.enabled:
            self._driver._before_op(self.cpu, address, write=False)
            self._stats.reads += 1
            return struct.pack("<Q", self._machine.rdmsr(self.cpu, address))
        t0 = _time.perf_counter_ns()
        try:
            self._driver._before_op(self.cpu, address, write=False)
            self._stats.reads += 1
            return struct.pack("<Q", self._machine.rdmsr(self.cpu, address))
        finally:
            metrics = tracer.metrics
            metrics.incr("msr.pread")
            metrics.observe("msr.pread.ns", _time.perf_counter_ns() - t0)

    def pwrite(self, address: int, data: bytes) -> None:
        """Write 8 bytes at offset *address* (one WRMSR)."""
        self._check_open()
        if not self.writable:
            raise MsrError(f"msr device for cpu {self.cpu} opened read-only")
        if len(data) != 8:
            raise MsrError(f"msr writes must be 8 bytes, got {len(data)}")
        tracer = _trace.TRACER
        if not tracer.enabled:
            self._do_pwrite(address, data)
            return
        t0 = _time.perf_counter_ns()
        try:
            self._do_pwrite(address, data)
        finally:
            metrics = tracer.metrics
            metrics.incr("msr.pwrite")
            metrics.observe("msr.pwrite.ns", _time.perf_counter_ns() - t0)

    def _do_pwrite(self, address: int, data: bytes) -> None:
        self._driver._before_op(self.cpu, address, write=True)
        value = struct.unpack("<Q", data)[0]
        value = self._driver._rewrite_value(address, value)
        self._stats.writes += 1
        self._machine.wrmsr(self.cpu, address, value)

    # Convenience integer forms used by the tool layer.

    def read_msr(self, address: int) -> int:
        return struct.unpack("<Q", self.pread(address))[0]

    def write_msr(self, address: int, value: int) -> None:
        self.pwrite(address, struct.pack("<Q", value & (2**64 - 1)))

    def journaled_write(self, address: int, value: int) -> None:
        """The crash-safe write path for state-mutating registers.

        Write-ahead ordering: the journal record — before-value, new
        value, cpu, register, session epoch — is appended (and, for a
        file-backed journal, flushed) *before* the device write, so a
        crash at any instant leaves either an un-acted-on record
        (recovery restores an unchanged value — idempotent) or a
        record for a completed write (recovery undoes it).  The
        before-value is the device's own knowledge of its register
        file, so journaling never perturbs the operation clock or the
        fault dice — a journaled run injects the same faults at the
        same points as an unjournaled one.

        With journaling disabled (``--no-journal``) this degrades to
        a plain :meth:`write_msr`; either way the address must be in
        the architecture's state-mutating classification (the LK5xx
        lint statically verifies the tool layer only writes through
        here)."""
        driver = self._driver
        journal = driver.journal
        if journal is None:
            self.write_msr(address, value)
            return
        if address not in self._mutable:
            raise JournalError(
                f"journaled write to MSR 0x{address:X}, which is not a "
                f"state-mutating register of {driver.machine.name} "
                f"(classifier bug — see docs/linting.md LK502)")
        self._record_write(driver.current_epoch, self.cpu, address,
                           self._peek(address),
                           value & 0xFFFFFFFFFFFFFFFF)
        self.write_msr(address, value)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stats.closes += 1

    # Context-manager form so ad-hoc users get guaranteed closes too.

    def __enter__(self) -> "MsrFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MsrDriver:
    """The msr kernel module: loadable, with device-node permissions,
    and (optionally) a deterministic fault schedule."""

    def __init__(self, machine: SimMachine, *, loaded: bool = True,
                 device_writable: bool = True,
                 faults: FaultPlan | None = None,
                 metrics: MetricsRegistry | None = None,
                 journal: MsrJournal | None = None,
                 journaling: bool = True,
                 procs: SimProcessTable | None = None,
                 pid: int | None = None,
                 locks: SocketLockTable | None = None):
        self.machine = machine
        self.loaded = loaded
        self.device_writable = device_writable
        self.stats = DriverStats()
        # Fault accounting is reconciled with the perfctr retry loop
        # through one registry: the driver counts every injected fault
        # here (msr.faults.*) and CounterProgrammer counts every
        # absorbed/abandoned one in the same registry (msr.io.*), so
        # the two sides cannot drift apart (docs/observability.md).
        self.metrics = metrics if metrics is not None else _trace.metrics()
        self.fault_plan = faults
        self._faults: _FaultState | None = None
        if faults is not None:
            self._faults = _FaultState(
                plan=faults, rng=random.Random(faults.seed),
                sticky=frozenset(faults.sticky_addresses))
        # Crash-safety state: the write-ahead journal (on by default,
        # in-memory unless a file-backed one is passed in), the shared
        # socket-lock table, and the simulated process the driver acts
        # for.  ``journaling=False`` is the --no-journal path.
        self.procs = procs if procs is not None else SimProcessTable()
        self.pid = pid if pid is not None else self.procs.spawn()
        if not journaling:
            self.journal: MsrJournal | None = None
        else:
            self.journal = journal if journal is not None \
                else MsrJournal(metrics=self.metrics)
        # A shared lock table (repro.server: many session drivers over
        # one node) must be keyed by the same process table this
        # driver's pid lives in, or liveness checks would lie.
        if locks is not None and locks.procs is not self.procs:
            raise ValueError(
                "shared SocketLockTable must use the driver's process "
                "table (pass procs= alongside locks=)")
        self.locks = locks if locks is not None \
            else SocketLockTable(self.procs)
        self.current_epoch = 0
        self._open_epochs: set[int] = set()
        self._epoch_counter = 0
        self._process_dead = False
        self._mutable: frozenset[int] | None = None

    @property
    def mutable_addresses(self) -> frozenset[int]:
        """The architecture's state-mutating register classification
        (journal write surface), computed once per driver."""
        if self._mutable is None:
            self._mutable = state_mutating_addresses(self.machine.spec)
        return self._mutable

    # -- process model ---------------------------------------------------------

    @property
    def process_alive(self) -> bool:
        return not self._process_dead

    def _check_process(self) -> None:
        if self._process_dead:
            raise ProcessKilled(
                f"pid {self.pid} was killed mid-session; msr state may "
                f"be dirty — recover before measuring")

    def _die(self) -> None:
        """SIGKILL the process model: mark the pid dead and refuse
        every further driver operation."""
        self._process_dead = True
        self.procs.kill(self.pid)
        raise ProcessKilled(
            f"pid {self.pid} killed after "
            f"{self._faults.op_count if self._faults else 0} device "
            f"operations (kill_after fault); no teardown will run")

    def terminate(self) -> None:
        """SIGKILL the process model *from outside* (the server's
        lease preemption).  Unlike the fault-scheduled :meth:`_die`
        this does not raise — the preempting scheduler is not the
        dying process; it marks the pid dead so every further driver
        operation fails, socket locks go stale, and the write-ahead
        journal stays orphaned for recovery to replay."""
        self._process_dead = True
        self.procs.kill(self.pid)

    def respawn(self) -> int:
        """Start a new process model against the same hardware (the
        recovering tool invocation).  The dirty MSR state, held locks
        and orphaned journal are untouched — that is recovery's job."""
        self.pid = self.procs.spawn()
        self._process_dead = False
        self.current_epoch = 0
        return self.pid

    # -- session epochs --------------------------------------------------------

    def begin_epoch(self) -> int:
        """Open a session epoch: the unit the journal and socket locks
        attribute mutations to."""
        self._check_process()
        if self.journal is not None:
            epoch = self.journal.begin_epoch()
        else:
            self._epoch_counter += 1
            epoch = self._epoch_counter
        self._open_epochs.add(epoch)
        self.current_epoch = epoch
        return epoch

    def end_epoch(self, epoch: int) -> None:
        """Close a session epoch.  When no epoch remains open and no
        socket lock is held, the journal is retired — a cleanly ended
        run leaves nothing to recover."""
        if self._process_dead:
            return          # a dead process runs no epilogue
        self._open_epochs.discard(epoch)
        if self.current_epoch == epoch:
            self.current_epoch = 0
        if self.journal is not None and not self._open_epochs \
                and not self.locks.held():
            self.journal.clear()

    # -- socket locks ----------------------------------------------------------

    def acquire_socket_lock(self, socket: int, cpu: int,
                            epoch: int) -> None:
        """Take a socket's uncore lock for this pid/epoch, journaling
        the transition.  A stale lock (dead owner) is reclaimed in
        place and counted in ``recover.stale_locks_reclaimed``; a
        live owner raises :class:`~repro.errors.SocketLockError`."""
        self._check_process()
        holder = self.locks.holder(socket)
        fresh = self.locks.acquire(socket, cpu, self.pid, epoch)
        if not fresh:
            self.metrics.incr("recover.stale_locks_reclaimed")
            if self.journal is not None and holder is not None:
                self.journal.record_unlock(holder.epoch, socket,
                                           holder.owner_pid)
        if self.journal is not None:
            self.journal.record_lock(epoch, socket, self.pid)

    def release_socket_lock(self, socket: int, epoch: int) -> bool:
        """Drop a socket lock held by this pid/epoch.

        Returns ``False`` — and counts ``recover.lock_conflict`` —
        when the lock was lost to another owner mid-session, leaving
        the new owner's entry untouched.  A dead process releases
        nothing (its locks go stale instead)."""
        if self._process_dead:
            return False
        if not self.locks.release(socket, self.pid, epoch):
            if self.locks.holder(socket) is not None:
                self.metrics.incr("recover.lock_conflict")
            return False
        if self.journal is not None:
            self.journal.record_unlock(epoch, socket, self.pid)
        return True

    # -- module lifecycle ------------------------------------------------------

    def load(self) -> None:
        """modprobe msr"""
        self.loaded = True

    def unload(self) -> None:
        self.loaded = False

    def open(self, cpu: int, *, write: bool = True) -> MsrFile:
        """Open ``/dev/cpu/<cpu>/msr``."""
        self._check_process()
        self._count_op()
        if not self.loaded:
            raise MsrError(
                "msr module not loaded: /dev/cpu/*/msr does not exist "
                "(run 'modprobe msr')")
        if not 0 <= cpu < self.machine.num_hwthreads:
            raise MsrError(f"no such device /dev/cpu/{cpu}/msr")
        if write and not self.device_writable:
            raise MsrPermissionError(
                f"permission denied opening /dev/cpu/{cpu}/msr for writing")
        self.stats.opens += 1
        return MsrFile(self, cpu, writable=write)

    # -- fault machinery -------------------------------------------------------

    def _count_op(self) -> None:
        """Advance the operation clock and fire any scheduled state
        flips (module unload, permission revocation, process death)."""
        state = self._faults
        if state is None:
            return
        state.op_count += 1
        plan = state.plan
        if plan.unload_after is not None \
                and state.op_count > plan.unload_after and self.loaded:
            self.loaded = False
        if plan.revoke_write_after is not None \
                and state.op_count > plan.revoke_write_after \
                and self.device_writable:
            self.device_writable = False
        if plan.kill_after is not None and not state.kill_fired \
                and state.op_count > plan.kill_after:
            state.kill_fired = True
            self._die()         # raises ProcessKilled
        if plan.sigint_after is not None and not state.sigint_fired \
                and state.op_count > plan.sigint_after:
            state.sigint_fired = True
            raise SimulatedInterrupt(
                f"simulated SIGINT after {state.op_count - 1} device "
                f"operations; graceful teardown should follow")

    def _before_op(self, cpu: int, address: int, *, write: bool) -> None:
        """Roll the dice for one pread/pwrite; raise to inject."""
        state = self._faults
        if state is None:
            return
        self._count_op()
        if not self.loaded:
            # The op clock just crossed unload_after: this very
            # operation observes the module's disappearance.
            raise MsrIOError(
                "ENODEV",
                f"msr module unloaded under open device for cpu {cpu}",
                cpu=cpu, address=address)
        plan = state.plan
        if address in state.sticky:
            self.stats.faults += 1
            self.metrics.incr("msr.faults.sticky")
            raise MsrIOError(
                "EIO", f"sticky fault at msr 0x{address:X} on cpu {cpu}",
                cpu=cpu, address=address)
        rate = plan.write_fault_rate if write else plan.read_fault_rate
        if rate > 0.0 and state.rng.random() < rate:
            self.stats.faults += 1
            self.metrics.incr("msr.faults.transient")
            op = "pwrite" if write else "pread"
            raise MsrIOError(
                plan.transient_errno,
                f"transient {op} fault at msr 0x{address:X} on cpu {cpu}",
                transient=True, cpu=cpu, address=address)

    def _rewrite_value(self, address: int, value: int) -> int:
        """Forced overflow: zeroing a counter register preloads it near
        the top of its range instead, so it wraps after
        ``overflow_after`` counted events."""
        state = self._faults
        if state is None or state.plan.overflow_after is None:
            return value
        if value == 0 and address in self.machine.counter_addresses():
            top = 1 << self.machine.counter_width
            return top - state.plan.overflow_after
        return value
