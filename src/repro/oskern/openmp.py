"""OpenMP runtime models: thread-creation behaviour of icc and gcc.

The paper's central pinning subtlety (§II.C, §IV.A): "the Intel OpenMP
implementation always runs OMP_NUM_THREADS+1 threads but uses the
first newly created thread as a management thread, which should not be
pinned ... gcc OpenMP only creates OMP_NUM_THREADS-1 additional
threads and does not require a shepherd thread."

This module reproduces both runtimes, including the Intel runtime's
own affinity interface (``KMP_AFFINITY``), which only operates when
the executable runs on a GenuineIntel processor and which LIKWID
disables automatically to avoid interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread, ThreadKind


@dataclass
class Team:
    """One OpenMP parallel team."""

    master: SimThread
    created: list[SimThread] = field(default_factory=list)

    @property
    def all_threads(self) -> list[SimThread]:
        return [self.master, *self.created]

    @property
    def compute_threads(self) -> list[SimThread]:
        """Threads that execute parallel-region work, in OpenMP thread-id
        order (master is OpenMP thread 0)."""
        return [t for t in self.all_threads if t.computes]


class OpenMPRuntime:
    """A compiled-in OpenMP runtime ('intel' or 'gnu')."""

    def __init__(self, kernel: OSKernel, model: str = "gnu"):
        if model not in ("intel", "gnu"):
            raise SchedulerError(f"unknown OpenMP runtime model {model!r}")
        self.kernel = kernel
        self.model = model

    def spawn_team(self, num_threads: int,
                   master: SimThread | None = None) -> Team:
        """Create the parallel team for OMP_NUM_THREADS=*num_threads*.

        Intel: num_threads newly created threads, the first of which is
        the shepherd (never computes).  GNU: num_threads-1 created
        threads, all compute.  Either way the master computes and
        exactly *num_threads* threads do work.
        """
        if num_threads < 1:
            raise SchedulerError("OMP_NUM_THREADS must be >= 1")
        if master is None:
            master = self.kernel.spawn_process()
        team = Team(master=master)
        if self.model == "intel":
            if num_threads > 1:
                team.created.append(
                    self.kernel.pthread_create(ThreadKind.SHEPHERD, "omp-shepherd"))
                for i in range(1, num_threads):
                    team.created.append(
                        self.kernel.pthread_create(ThreadKind.WORKER, f"omp-{i}"))
        else:
            for i in range(1, num_threads):
                team.created.append(
                    self.kernel.pthread_create(ThreadKind.WORKER, f"omp-{i}"))
        self._apply_kmp_affinity(team)
        return team

    # -- the Intel runtime's own affinity interface ---------------------------

    def _apply_kmp_affinity(self, team: Team) -> None:
        """Honour KMP_AFFINITY — Intel runtime only, Intel CPUs only.

        The benchmark section of the paper sets KMP_AFFINITY=disabled
        for the likwid-pin runs and =scatter for the Fig. 6 run.
        """
        if self.model != "intel":
            return
        mode = self.kernel.env.get("KMP_AFFINITY", "disabled").lower()
        if mode in ("disabled", "none", ""):
            return
        if self.kernel.machine.spec.vendor != "GenuineIntel":
            return  # icc's topology interface no-ops on non-Intel parts
        if mode == "scatter":
            order = self.kernel.machine.spec.scatter_order()
        elif mode == "compact":
            order = self.kernel.machine.spec.compact_order()
        else:
            raise SchedulerError(f"unsupported KMP_AFFINITY={mode!r}")
        for omp_id, thread in enumerate(team.compute_threads):
            cpu = order[omp_id % len(order)]
            self.kernel.sched_setaffinity(thread.tid, {cpu})
