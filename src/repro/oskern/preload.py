"""The pthread_create wrapper library that likwid-pin preloads.

The paper (§II.C, Fig. 3): "By overloading the pthread_create API call
with a shared library wrapper, each thread can be pinned in turn upon
creation, working through a list of core IDs.  This list, and possibly
other parameters, are encoded in environment variables that are
evaluated when the library wrapper is first called."

:class:`PinOverlay` reproduces that: it installs a creation hook into
the simulated kernel, lazily parses ``LIKWID_PIN`` (the core-ID list)
and ``LIKWID_SKIP`` (the skip mask as a binary pattern over newly
created threads) from the process environment on first use, and pins
each non-skipped thread to the next core in the list.
"""

from __future__ import annotations

from repro.errors import AffinityError
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread

ENV_CPULIST = "LIKWID_PIN"
ENV_SKIP = "LIKWID_SKIP"


class PinOverlay:
    """State of the preloaded wrapper library inside one process."""

    def __init__(self) -> None:
        self._initialised = False
        self._cpulist: list[int] = []
        self._skip_mask = 0
        self._created = 0      # newly created threads seen so far
        self._next_slot = 1    # master already took cpulist[0]
        self.pinned_tids: list[int] = []
        self.skipped_tids: list[int] = []

    # -- env evaluation (lazy, as in the real wrapper) -----------------------

    def _initialise(self, kernel: OSKernel) -> None:
        raw = kernel.env.get(ENV_CPULIST, "")
        if raw:
            try:
                self._cpulist = [int(c) for c in raw.split(",") if c != ""]
            except ValueError as exc:
                raise AffinityError(f"bad {ENV_CPULIST}={raw!r}") from exc
        self._skip_mask = int(kernel.env.get(ENV_SKIP, "0x0"), 16)
        self._initialised = True

    # -- process start: likwid-pin pins the starting process itself ----------

    def pin_master(self, kernel: OSKernel, master: SimThread) -> None:
        """Pin the initial process thread to the first core of the list
        (what likwid-pin does before handing over to the application)."""
        if not self._initialised:
            self._initialise(kernel)
        if self._cpulist:
            kernel.sched_setaffinity(master.tid, {self._cpulist[0]})

    # -- the wrapped pthread_create -------------------------------------------

    def __call__(self, kernel: OSKernel, thread: SimThread) -> None:
        if not self._initialised:
            self._initialise(kernel)
        index = self._created
        self._created += 1
        if not self._cpulist:
            return
        if self._skip_mask & (1 << index):
            self.skipped_tids.append(thread.tid)
            return
        if self._next_slot >= len(self._cpulist):
            # More threads than cores in the list: wrap around, like the
            # real wrapper working through the list modulo its length.
            self._next_slot = 0
        cpu = self._cpulist[self._next_slot]
        self._next_slot += 1
        kernel.sched_setaffinity(thread.tid, {cpu})
        self.pinned_tids.append(thread.tid)

    def install(self, kernel: OSKernel) -> "PinOverlay":
        """LD_PRELOAD the wrapper into the process."""
        kernel.register_create_hook(self)
        return self
