"""Rendering of ``/proc/cpuinfo`` for a simulated machine.

The paper notes that the Linux kernel "numbers the usable cores and
makes this information accessible in /proc/cpuinfo", but that the
mapping to node topology is opaque — which is exactly what this
renderer shows: per-CPU stanzas with ``physical id``/``core id``
fields whose relation to caches and sockets needs likwid-topology to
untangle.
"""

from __future__ import annotations

from repro.hw.cpuid import decode_signature
from repro.hw.machine import SimMachine


def render_cpuinfo(machine: SimMachine) -> str:
    """Produce the text of /proc/cpuinfo for every hardware thread."""
    spec = machine.spec
    stanzas = []
    for hwthread in range(spec.num_hwthreads):
        leaf1 = machine.cpuid(hwthread, 0x1)
        family, model, stepping = decode_signature(leaf1.eax)
        socket, core_index, _smt = spec.hwthread_location(hwthread)
        vendor = "GenuineIntel" if spec.vendor == "GenuineIntel" else "AuthenticAMD"
        llc = spec.last_level_cache()
        flags = " ".join(spec.feature_flags
                         + (("ht",) if spec.threads_per_core > 1 else ()))
        stanzas.append("\n".join([
            f"processor\t: {hwthread}",
            f"vendor_id\t: {vendor}",
            f"cpu family\t: {family}",
            f"model\t\t: {model}",
            f"model name\t: {spec.cpu_name}",
            f"stepping\t: {stepping}",
            f"cpu MHz\t\t: {spec.clock_hz / 1e6:.3f}",
            f"cache size\t: {llc.size // 1024} KB",
            f"physical id\t: {socket}",
            f"siblings\t: {spec.threads_per_socket}",
            f"core id\t\t: {spec.core_ids[core_index]}",
            f"cpu cores\t: {spec.cores_per_socket}",
            f"apicid\t\t: {spec.apic_id(hwthread)}",
            f"flags\t\t: {flags}",
        ]))
    return "\n\n".join(stanzas) + "\n"


def parse_cpuinfo(text: str) -> list[dict[str, str]]:
    """Parse /proc/cpuinfo text back into per-CPU field dictionaries."""
    cpus: list[dict[str, str]] = []
    current: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            if current:
                cpus.append(current)
                current = {}
            continue
        key, _, value = line.partition(":")
        current[key.strip()] = value.strip()
    if current:
        cpus.append(current)
    return cpus
