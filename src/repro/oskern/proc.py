"""The ``/proc`` surface of the simulated OS.

Two pieces live here:

* rendering of ``/proc/cpuinfo`` for a simulated machine — the paper
  notes that the Linux kernel "numbers the usable cores and makes
  this information accessible in /proc/cpuinfo", but that the mapping
  to node topology is opaque, which is exactly what the renderer
  shows;
* **process liveness** — the ``kill -0`` style existence probe the
  crash-recovery machinery uses to decide whether a socket-lock owner
  or journal epoch belongs to a process that is still alive.  The
  simulated process table (:class:`SimProcessTable`) models the tool
  process the msr driver acts for, so a ``kill_after`` fault can
  "kill" it without taking the test process down; pids the table did
  not create fall back to a real OS-level probe, which is what makes
  cross-process CLI recovery honest (a crashed ``likwid-perfctr``
  leaves its real pid in the journal, and the recovering run sees it
  as dead).
"""

from __future__ import annotations

import os

from repro.hw.cpuid import decode_signature
from repro.hw.machine import SimMachine


def pid_alive(pid: int) -> bool:
    """OS-level liveness probe: ``kill(pid, 0)`` semantics.

    ``ESRCH`` (no such process) means dead; ``EPERM`` means the
    process exists but belongs to someone else — alive for lock
    purposes.  Non-positive pids are never alive (0/-1 address
    process groups, not processes)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class SimProcessTable:
    """Liveness registry for simulated tool processes.

    ``spawn()`` allocates a pid from a private range far above any
    real pid_max so simulated pids can never collide with (and be
    shadowed by) live OS processes.  ``alive()`` answers for spawned
    pids from the table and delegates everything else to
    :func:`pid_alive`, so one probe serves both the in-process crash
    matrix and real crashed-CLI journals.

    Allocation is process-wide (class-level counter) and offset by the
    hosting real pid: a recovering invocation — whether a new table in
    the same interpreter or a different OS process reading the crashed
    run's journal — can never re-allocate the dead run's pid and
    thereby mistake its stale locks for its own live ones."""

    #: First simulated pid; Linux pid_max caps real pids at 2**22.
    PID_BASE = 1 << 24
    _counter = 0     # shared across every table in this process

    def __init__(self):
        self._alive: dict[int, bool] = {}

    def spawn(self) -> int:
        pid = self.PID_BASE + ((os.getpid() & 0xFFFF) << 12) \
            + SimProcessTable._counter
        SimProcessTable._counter += 1
        self._alive[pid] = True
        return pid

    def kill(self, pid: int) -> None:
        """SIGKILL model: mark a spawned pid dead (idempotent)."""
        if pid in self._alive:
            self._alive[pid] = False

    def alive(self, pid: int) -> bool:
        known = self._alive.get(pid)
        if known is not None:
            return known
        return pid_alive(pid)


def render_cpuinfo(machine: SimMachine) -> str:
    """Produce the text of /proc/cpuinfo for every hardware thread."""
    spec = machine.spec
    stanzas = []
    for hwthread in range(spec.num_hwthreads):
        leaf1 = machine.cpuid(hwthread, 0x1)
        family, model, stepping = decode_signature(leaf1.eax)
        socket, core_index, _smt = spec.hwthread_location(hwthread)
        vendor = spec.vendor
        llc = spec.last_level_cache()
        flags = " ".join(spec.feature_flags
                         + (("ht",) if spec.threads_per_core > 1 else ()))
        stanzas.append("\n".join([
            f"processor\t: {hwthread}",
            f"vendor_id\t: {vendor}",
            f"cpu family\t: {family}",
            f"model\t\t: {model}",
            f"model name\t: {spec.cpu_name}",
            f"stepping\t: {stepping}",
            f"cpu MHz\t\t: {spec.clock_hz / 1e6:.3f}",
            f"cache size\t: {llc.size // 1024} KB",
            f"physical id\t: {socket}",
            f"siblings\t: {spec.threads_per_socket}",
            f"core id\t\t: {spec.core_ids[core_index]}",
            f"cpu cores\t: {spec.cores_per_socket}",
            f"apicid\t\t: {spec.apic_id(hwthread)}",
            f"flags\t\t: {flags}",
        ]))
    return "\n\n".join(stanzas) + "\n"


def parse_cpuinfo(text: str) -> list[dict[str, str]]:
    """Parse /proc/cpuinfo text back into per-CPU field dictionaries."""
    cpus: list[dict[str, str]] = []
    current: dict[str, str] = {}
    for line in text.splitlines():
        if not line.strip():
            if current:
                cpus.append(current)
                current = {}
            continue
        key, _, value = line.partition(":")
        current[key.strip()] = value.strip()
    if current:
        cpus.append(current)
    return cpus
