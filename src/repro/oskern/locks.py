"""Uncore socket locks with owner liveness (paper §II.A, §III.C).

Uncore counters are socket-scope, so likwid-perfctr elects one thread
per socket — the *socket lock owner* — to program and read them.  The
original tool implements the lock as shared state that survives the
process; the consequence it long struggled with is a crashed run
leaving sockets locked for every subsequent measurement.

:class:`SocketLockTable` models the shared lock state with enough
metadata to fix that: each lock stores its **owner pid** and the
**session epoch** that acquired it.  Acquisition against a *live*
owner fails (:class:`~repro.errors.SocketLockError`, which the
perfctr runtime degrades to per-event NaN); acquisition against a
*dead* owner reclaims the stale lock in place instead of failing —
the ``recover.stale_locks_reclaimed`` metric counts every steal.
Release compares pid **and** epoch, so a session that lost its lock
to a reclaim cannot clobber the new owner's entry
(``recover.lock_conflict``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SocketLockError
from repro.oskern.proc import SimProcessTable


@dataclass(frozen=True)
class SocketLock:
    """One held lock: which socket, who owns it, since which epoch."""

    socket: int
    owner_pid: int
    epoch: int
    cpu: int = -1     # the owning hardware thread (informational)


class SocketLockTable:
    """Shared socket-lock state for one machine's uncore PMUs."""

    def __init__(self, procs: SimProcessTable):
        self.procs = procs
        self._locks: dict[int, SocketLock] = {}

    def holder(self, socket: int) -> SocketLock | None:
        return self._locks.get(socket)

    def held(self) -> dict[int, SocketLock]:
        """All currently held locks, by socket."""
        return dict(self._locks)

    def acquire(self, socket: int, cpu: int, pid: int,
                epoch: int) -> bool:
        """Take the lock for (pid, epoch).

        Returns ``True`` on a plain acquisition, ``False`` when a
        stale lock (dead owner) was reclaimed along the way.  Raises
        :class:`SocketLockError` when a *live* owner holds it."""
        current = self._locks.get(socket)
        stale = False
        if current is not None:
            if current.owner_pid == pid and current.epoch == epoch:
                return True          # re-entrant within one session
            if self.procs.alive(current.owner_pid):
                raise SocketLockError(
                    f"socket {socket} uncore lock held by live "
                    f"pid {current.owner_pid} (epoch {current.epoch})",
                    socket=socket, owner_pid=current.owner_pid)
            stale = True             # dead owner: reclaim in place
        self._locks[socket] = SocketLock(socket, pid, epoch, cpu)
        return not stale

    def release(self, socket: int, pid: int, epoch: int) -> bool:
        """Drop the lock if (pid, epoch) still owns it.

        Returns ``False`` — without touching the entry — when the
        lock is gone or owned by someone else (it was reclaimed or
        re-acquired mid-session); the caller records the conflict."""
        current = self._locks.get(socket)
        if current is None or current.owner_pid != pid \
                or current.epoch != epoch:
            return False
        del self._locks[socket]
        return True

    def force_release(self, socket: int) -> SocketLock | None:
        """Unconditional removal (recovery engine only)."""
        return self._locks.pop(socket, None)

    def stale(self) -> list[SocketLock]:
        """Held locks whose owner is no longer alive."""
        return [lock for lock in self._locks.values()
                if not self.procs.alive(lock.owner_pid)]
