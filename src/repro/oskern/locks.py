"""Uncore socket locks with owner liveness (paper §II.A, §III.C).

Uncore counters are socket-scope, so likwid-perfctr elects one thread
per socket — the *socket lock owner* — to program and read them.  The
original tool implements the lock as shared state that survives the
process; the consequence it long struggled with is a crashed run
leaving sockets locked for every subsequent measurement.

:class:`SocketLockTable` models the shared lock state with enough
metadata to fix that: each lock stores its **owner pid** and the
**session epoch** that acquired it.  Acquisition against a *live*
owner fails (:class:`~repro.errors.SocketLockError`, which the
perfctr runtime degrades to per-event NaN); acquisition against a
*dead* owner reclaims the stale lock in place instead of failing —
the ``recover.stale_locks_reclaimed`` metric counts every steal.
Release compares pid **and** epoch, so a session that lost its lock
to a reclaim cannot clobber the new owner's entry
(``recover.lock_conflict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SocketLockError
from repro.oskern.proc import SimProcessTable


@dataclass(frozen=True)
class SocketLock:
    """One held lock: which socket, who owns it, since which epoch."""

    socket: int
    owner_pid: int
    epoch: int
    cpu: int = -1     # the owning hardware thread (informational)


class SocketLockTable:
    """Shared socket-lock state for one machine's uncore PMUs."""

    def __init__(self, procs: SimProcessTable):
        self.procs = procs
        self._locks: dict[int, SocketLock] = {}

    def holder(self, socket: int) -> SocketLock | None:
        return self._locks.get(socket)

    def held(self) -> dict[int, SocketLock]:
        """All currently held locks, by socket."""
        return dict(self._locks)

    def acquire(self, socket: int, cpu: int, pid: int,
                epoch: int) -> bool:
        """Take the lock for (pid, epoch).

        Returns ``True`` on a plain acquisition, ``False`` when a
        stale lock (dead owner) was reclaimed along the way.  Raises
        :class:`SocketLockError` when a *live* owner holds it."""
        current = self._locks.get(socket)
        stale = False
        if current is not None:
            if current.owner_pid == pid and current.epoch == epoch:
                return True          # re-entrant within one session
            if self.procs.alive(current.owner_pid):
                raise SocketLockError(
                    f"socket {socket} uncore lock held by live "
                    f"pid {current.owner_pid} (epoch {current.epoch})",
                    socket=socket, owner_pid=current.owner_pid)
            stale = True             # dead owner: reclaim in place
        self._locks[socket] = SocketLock(socket, pid, epoch, cpu)
        return not stale

    def release(self, socket: int, pid: int, epoch: int) -> bool:
        """Drop the lock if (pid, epoch) still owns it.

        Returns ``False`` — without touching the entry — when the
        lock is gone or owned by someone else (it was reclaimed or
        re-acquired mid-session); the caller records the conflict."""
        current = self._locks.get(socket)
        if current is None or current.owner_pid != pid \
                or current.epoch != epoch:
            return False
        del self._locks[socket]
        return True

    def force_release(self, socket: int) -> SocketLock | None:
        """Unconditional removal (recovery engine only)."""
        return self._locks.pop(socket, None)

    def stale(self) -> list[SocketLock]:
        """Held locks whose owner is no longer alive."""
        return [lock for lock in self._locks.values()
                if not self.procs.alive(lock.owner_pid)]

    def acquire_waitable(self, socket: int, cpu: int, pid: int,
                         epoch: int, *, queue: "FairWaitQueue",
                         tenant: str = "", now: float = 0.0,
                         deadline: float | None = None,
                         payload: object = None) -> "LockWaiter | None":
        """Waitable single-socket acquisition (ISSUE 9).

        Where :meth:`acquire` raises :class:`SocketLockError` against
        a live owner, this enqueues the request on *queue* instead and
        returns the :class:`LockWaiter` ticket; the caller grants it
        later via :meth:`FairWaitQueue.grant_next` once the holder
        releases.  Returns ``None`` when the lock was taken
        immediately (including the stale-reclaim path)."""
        try:
            self.acquire(socket, cpu, pid, epoch)
        except SocketLockError:
            return queue.enqueue((socket,), tenant=tenant, now=now,
                                 deadline=deadline, payload=payload)
        return None


# -- waitable acquisition (ISSUE 9) -------------------------------------------

@dataclass
class LockWaiter:
    """One queued multi-socket lock request.

    ``sockets`` must all be free before the request is grantable (the
    grant is atomic — no partial acquisition, so two half-granted
    requests cannot deadlock each other).  ``seq`` is the queue-wide
    arrival number; ``enqueued_at`` and ``deadline`` are in the
    caller's clock domain (the server scheduler uses virtual node
    seconds, so waits are deterministic and replayable)."""

    sockets: tuple[int, ...]
    tenant: str = ""
    seq: int = 0
    enqueued_at: float = 0.0
    deadline: float | None = None      # max wait before expiry
    payload: object = None             # opaque caller state

    def expired(self, now: float) -> bool:
        return self.deadline is not None \
            and (now - self.enqueued_at) > self.deadline


@dataclass
class FairWaitQueue:
    """Deficit-fair, aging-aware wait queue for socket locks.

    The pick order is deficit round-robin across tenants: among the
    queued requests, the one whose tenant has consumed the least lock
    service (``charge``d virtual hold time) wins, ties broken FIFO by
    arrival ``seq``.  A backlogged light tenant therefore cannot be
    starved by a heavy one — shares equalize while both have work.

    Aging prevents head-of-line starvation of multi-socket requests:
    a request that has waited longer than ``age_limit`` *reserves* its
    sockets, blocking younger requests from overtaking it on any of
    them (the classic bounded-bypass rule).
    """

    age_limit: float | None = None
    _waiting: list[LockWaiter] = field(default_factory=list)
    _service: dict[str, float] = field(default_factory=dict)
    _seq: int = 0

    def __len__(self) -> int:
        return len(self._waiting)

    def waiting(self) -> list[LockWaiter]:
        return list(self._waiting)

    def service(self, tenant: str) -> float:
        """Accumulated lock service charged against a tenant."""
        return self._service.get(tenant, 0.0)

    def enqueue(self, sockets: tuple[int, ...], *, tenant: str = "",
                now: float = 0.0, deadline: float | None = None,
                payload: object = None) -> LockWaiter:
        self._seq += 1
        waiter = LockWaiter(tuple(sockets), tenant=tenant, seq=self._seq,
                            enqueued_at=now, deadline=deadline,
                            payload=payload)
        self._waiting.append(waiter)
        return waiter

    def cancel(self, waiter: LockWaiter) -> bool:
        """Remove a queued request (client cancellation); returns
        False when it was already granted or expired away."""
        try:
            self._waiting.remove(waiter)
        except ValueError:
            return False
        return True

    def charge(self, tenant: str, amount: float) -> None:
        """Account *amount* of lock hold time to a tenant (the
        deficit counter the fairness pick orders by)."""
        self._service[tenant] = self._service.get(tenant, 0.0) + amount

    def expire(self, now: float) -> list[LockWaiter]:
        """Remove and return every waiter whose deadline has passed
        (deadline timeouts fire while queued — the caller reports
        them as timed-out sessions)."""
        expired = [w for w in self._waiting if w.expired(now)]
        if expired:
            self._waiting = [w for w in self._waiting
                             if not w.expired(now)]
        return expired

    def _pick_order(self) -> list[LockWaiter]:
        return sorted(self._waiting,
                      key=lambda w: (self._service.get(w.tenant, 0.0),
                                     w.seq))

    def grant_next(self, busy: set[int],
                   now: float = 0.0) -> LockWaiter | None:
        """The next grantable request, removed from the queue, or
        None.  Walks the fairness order; a request whose sockets are
        busy is skipped (work conservation) unless it has aged past
        ``age_limit``, in which case its sockets are reserved against
        every younger request behind it."""
        reserved: set[int] = set()
        for waiter in self._pick_order():
            wanted = set(waiter.sockets)
            if not (wanted & busy) and not (wanted & reserved):
                self._waiting.remove(waiter)
                return waiter
            if self.age_limit is not None \
                    and (now - waiter.enqueued_at) >= self.age_limit:
                reserved |= wanted
        return None
