"""Rendering of the sysfs CPU topology tree for a simulated machine.

Produces the ``/sys/devices/system/cpu`` hierarchy as a path → content
mapping: ``topology/{physical_package_id,core_id,thread_siblings_list,
core_siblings_list}`` plus ``cache/indexN/*`` attributes.  LIKWID
itself decodes CPUID directly, but tests use this tree as an
independent oracle: sysfs and the CPUID decode must agree.
"""

from __future__ import annotations

from repro.hw.machine import SimMachine


def _cpulist(cpus: list[int]) -> str:
    """Render a sorted CPU list in the kernel's range syntax (0-3,8)."""
    cpus = sorted(cpus)
    parts: list[str] = []
    i = 0
    while i < len(cpus):
        j = i
        while j + 1 < len(cpus) and cpus[j + 1] == cpus[j] + 1:
            j += 1
        parts.append(str(cpus[i]) if i == j else f"{cpus[i]}-{cpus[j]}")
        i = j + 1
    return ",".join(parts)


def render_sysfs(machine: SimMachine) -> dict[str, str]:
    """Build the sysfs tree as {relative_path: contents}, including the
    ``/sys/devices/system/node`` NUMA hierarchy (cpulist, MemTotal and
    SLIT distances) that libnuma-based tools read."""
    spec = machine.spec
    tree: dict[str, str] = {
        "online": _cpulist(list(range(spec.num_hwthreads))),
        "node/online": _cpulist(list(range(spec.num_numa_domains))),
    }
    for domain in range(spec.num_numa_domains):
        base = f"node/node{domain}"
        tree[f"{base}/cpulist"] = _cpulist(
            spec.hwthreads_of_numa_domain(domain))
        tree[f"{base}/meminfo"] = (
            f"Node {domain} MemTotal: "
            f"{spec.memory_per_numa_domain // 1024} kB")
        tree[f"{base}/distance"] = " ".join(
            str(spec.numa_distance(domain, other))
            for other in range(spec.num_numa_domains))
    data_caches = spec.data_caches()
    for cpu in range(spec.num_hwthreads):
        socket, core_index, _smt = spec.hwthread_location(cpu)
        base = f"cpu{cpu}/topology"
        tree[f"{base}/physical_package_id"] = str(socket)
        tree[f"{base}/core_id"] = str(spec.core_ids[core_index])
        tree[f"{base}/thread_siblings_list"] = _cpulist(
            spec.hwthreads_of_core(socket, core_index))
        tree[f"{base}/core_siblings_list"] = _cpulist(
            spec.hwthreads_of_socket(socket))
        for index, cache in enumerate(data_caches):
            cbase = f"cpu{cpu}/cache/index{index}"
            tree[f"{cbase}/level"] = str(cache.level)
            tree[f"{cbase}/type"] = ("Data" if cache.type == "Data cache"
                                     else "Unified")
            tree[f"{cbase}/size"] = f"{cache.size // 1024}K"
            tree[f"{cbase}/ways_of_associativity"] = str(cache.associativity)
            tree[f"{cbase}/coherency_line_size"] = str(cache.line_size)
            tree[f"{cbase}/number_of_sets"] = str(cache.sets)
            tree[f"{cbase}/shared_cpu_list"] = _cpulist(
                _sharing_group(machine, cpu, cache.threads_sharing))
    return tree


def _sharing_group(machine: SimMachine, cpu: int, threads_sharing: int) -> list[int]:
    """The hardware threads sharing one cache instance with *cpu*.

    Cache instances tile the socket: a cache shared by K threads covers
    K/threads_per_core consecutive core indices on the same socket.
    """
    spec = machine.spec
    socket, core_index, _smt = spec.hwthread_location(cpu)
    cores_per_instance = max(1, threads_sharing // spec.threads_per_core)
    first = (core_index // cores_per_instance) * cores_per_instance
    group: list[int] = []
    for ci in range(first, min(first + cores_per_instance, spec.cores_per_socket)):
        group.extend(spec.hwthreads_of_core(socket, ci))
    return group


def parse_cpulist(text: str) -> list[int]:
    """Inverse of the kernel list format: '0-2,8' → [0, 1, 2, 8]."""
    cpus: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo, hi = part.split("-")
            cpus.extend(range(int(lo), int(hi) + 1))
        else:
            cpus.append(int(part))
    return cpus
