"""Simulated OS kernel: thread creation, affinity, and placement.

This layer reproduces the scheduling behaviour behind the paper's
case studies:

* ``sched_setaffinity`` semantics — an affinity mask restricts where a
  thread may run; likwid-pin works entirely through this interface.
* **Topology-blind balancing of unpinned threads.**  The Linux kernel
  balances run queues but, from the application's point of view, the
  mapping of threads to sockets/SMT siblings is effectively random —
  which produces the large unpinned variance in the paper's Figures
  4, 7 and 9.  Placement picks, among allowed CPUs, one with minimal
  (per-cpu load, per-core load) and random tie-breaking, so with few
  threads both may land on one socket, or on SMT siblings of one core.
* **First-touch ccNUMA memory** — a thread's memory lands on the
  socket where it first runs.
* **Migration** — unpinned threads may be migrated after first touch,
  leaving their memory behind on the old socket (remote accesses).
* ``pthread_create`` interception hooks — the mechanism likwid-pin's
  preloaded wrapper library uses (paper Fig. 3).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable

from repro.errors import SchedulerError
from repro.hw.machine import SimMachine
from repro.oskern.threads import SimThread, ThreadKind

# A creation hook sees the kernel and the freshly created thread; the
# likwid-pin preload overlay registers one to pin threads on creation.
CreateHook = Callable[["OSKernel", SimThread], None]


class OSKernel:
    """The simulated operating system for one :class:`SimMachine`."""

    def __init__(self, machine: SimMachine, *, seed: int = 0,
                 migration_rate: float = 0.35):
        self.machine = machine
        self.rng = random.Random(seed)
        self.migration_rate = migration_rate
        self.threads: dict[int, SimThread] = {}
        self._next_tid = 1000
        self._creation_count = 0
        self._create_hooks: list[CreateHook] = []
        self.env: dict[str, str] = {}  # process environment variables

    # -- cpu sets -------------------------------------------------------------

    @property
    def all_cpus(self) -> frozenset[int]:
        return frozenset(range(self.machine.num_hwthreads))

    def _validate_cpus(self, cpus: Iterable[int]) -> frozenset[int]:
        mask = frozenset(cpus)
        if not mask:
            raise SchedulerError("empty affinity mask")
        bad = mask - self.all_cpus
        if bad:
            raise SchedulerError(f"affinity mask contains invalid cpus {sorted(bad)}")
        return mask

    # -- thread lifecycle -------------------------------------------------------

    def register_create_hook(self, hook: CreateHook) -> None:
        """Install a pthread_create interceptor (the preload mechanism)."""
        self._create_hooks.append(hook)

    def clear_create_hooks(self) -> None:
        self._create_hooks.clear()

    def spawn_process(self, name: str = "a.out") -> SimThread:
        """Create the initial (master) thread of a new process."""
        thread = self._new_thread(ThreadKind.MASTER, name)
        return thread

    def pthread_create(self, kind: ThreadKind = ThreadKind.WORKER,
                       name: str = "") -> SimThread:
        """Create a new thread; creation hooks run before it executes,
        exactly like a wrapped pthread_create returning to the caller."""
        thread = self._new_thread(kind, name)
        for hook in self._create_hooks:
            hook(self, thread)
        return thread

    def _new_thread(self, kind: ThreadKind, name: str) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        thread = SimThread(tid=tid, kind=kind,
                           creation_index=self._creation_count,
                           name=name or f"thread-{tid}")
        self._creation_count += 1
        self.threads[tid] = thread
        return thread

    def _get(self, tid: int) -> SimThread:
        try:
            return self.threads[tid]
        except KeyError:
            raise SchedulerError(f"unknown tid {tid}") from None

    # -- affinity syscalls -------------------------------------------------------

    def sched_setaffinity(self, tid: int, cpus: Iterable[int]) -> None:
        thread = self._get(tid)
        thread.affinity = self._validate_cpus(cpus)
        if thread.hwthread is not None and thread.hwthread not in thread.affinity:
            thread.hwthread = None  # will be re-placed

    def sched_getaffinity(self, tid: int) -> frozenset[int]:
        thread = self._get(tid)
        return thread.affinity if thread.affinity is not None else self.all_cpus

    # -- placement ---------------------------------------------------------------

    def _load(self) -> tuple[dict[int, int], dict[tuple[int, int], int]]:
        """Current (per-hwthread, per-physical-core) runnable counts."""
        per_cpu = {cpu: 0 for cpu in self.all_cpus}
        per_core: dict[tuple[int, int], int] = {}
        for t in self.threads.values():
            if t.hwthread is not None:
                per_cpu[t.hwthread] += 1
                core = self.machine.spec.physical_core_of(t.hwthread)
                per_core[core] = per_core.get(core, 0) + 1
        return per_cpu, per_core

    def _pick_cpu(self, allowed: frozenset[int]) -> int:
        """Least-loaded allowed CPU; ties broken at random — the
        topology-blind randomness that makes unpinned runs volatile."""
        per_cpu, per_core = self._load()

        def key(cpu: int) -> tuple[int, int]:
            core = self.machine.spec.physical_core_of(cpu)
            return (per_cpu[cpu], per_core.get(core, 0))

        best = min(key(cpu) for cpu in allowed)
        candidates = [cpu for cpu in allowed if key(cpu) == best]
        return self.rng.choice(candidates)

    def place_thread(self, tid: int) -> int:
        """Assign a runnable CPU honouring the affinity mask, and set the
        first-touch memory home if not already set."""
        thread = self._get(tid)
        allowed = thread.affinity if thread.affinity is not None else self.all_cpus
        thread.hwthread = self._pick_cpu(allowed)
        if thread.memory_socket is None:
            thread.memory_socket = self.machine.spec.socket_of(thread.hwthread)
        return thread.hwthread

    def place_all(self, tids: Iterable[int] | None = None) -> None:
        """Place every (given) thread in creation order."""
        pool = sorted(
            (self._get(t) for t in tids) if tids is not None
            else self.threads.values(),
            key=lambda t: t.creation_index)
        for thread in pool:
            if thread.hwthread is None or thread.pinned:
                self.place_thread(thread.tid)

    def maybe_migrate(self, tids: Iterable[int]) -> int:
        """Randomly migrate unpinned threads to a rebalanced CPU while
        their memory stays on the first-touch socket.  Returns how many
        threads moved — the source of remote-access penalties in the
        unpinned STREAM runs."""
        moved = 0
        for tid in tids:
            thread = self._get(tid)
            if thread.pinned or thread.hwthread is None:
                continue
            if self.rng.random() < self.migration_rate:
                allowed = (thread.affinity if thread.affinity is not None
                           else self.all_cpus)
                old = thread.hwthread
                thread.hwthread = None
                new = self._pick_cpu(allowed)
                thread.hwthread = new
                if new != old:
                    moved += 1
        return moved

    def reset_threads(self) -> None:
        """Tear down all threads (process exit) but keep hooks and env."""
        self.threads.clear()
        self._creation_count = 0
