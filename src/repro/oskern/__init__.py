"""Simulated Linux-like OS layer: scheduler, msr driver, /proc, sysfs,
OpenMP runtimes, the pthread_create preload mechanism, and the
crash-safety machinery (write-ahead MSR journal, socket-lock table,
orphaned-state recovery)."""

from repro.oskern.journal import (JournalRecord, JournalScan, MsrJournal,
                                  state_mutating_addresses)
from repro.oskern.locks import SocketLock, SocketLockTable
from repro.oskern.msr_driver import (DriverStats, FaultPlan, MsrDriver,
                                     MsrFile)
from repro.oskern.openmp import OpenMPRuntime, Team
from repro.oskern.preload import PinOverlay
from repro.oskern.proc import SimProcessTable, pid_alive
from repro.oskern.recovery import RecoveryEngine, RecoveryReport, recover
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread, ThreadKind

__all__ = ["OSKernel", "SimThread", "ThreadKind", "MsrDriver", "MsrFile",
           "DriverStats", "FaultPlan", "OpenMPRuntime", "Team", "PinOverlay",
           "MsrJournal", "JournalRecord", "JournalScan",
           "state_mutating_addresses", "SocketLock", "SocketLockTable",
           "SimProcessTable", "pid_alive",
           "RecoveryEngine", "RecoveryReport", "recover"]
