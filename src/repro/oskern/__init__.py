"""Simulated Linux-like OS layer: scheduler, msr driver, /proc, sysfs,
OpenMP runtimes and the pthread_create preload mechanism."""

from repro.oskern.msr_driver import (DriverStats, FaultPlan, MsrDriver,
                                     MsrFile)
from repro.oskern.openmp import OpenMPRuntime, Team
from repro.oskern.preload import PinOverlay
from repro.oskern.scheduler import OSKernel
from repro.oskern.threads import SimThread, ThreadKind

__all__ = ["OSKernel", "SimThread", "ThreadKind", "MsrDriver", "MsrFile",
           "DriverStats", "FaultPlan", "OpenMPRuntime", "Team", "PinOverlay"]
