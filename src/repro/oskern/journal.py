"""``repro.oskern.journal``: a write-ahead journal for MSR state.

The tools in this suite mutate persistent hardware state: PERFEVTSEL
programming, counter preloads, uncore socket locks (paper §III.C) and
the ``IA32_MISC_ENABLE`` prefetcher bits (§II.D).  A process that dies
mid-session leaves all of it behind — counters enabled, prefetchers
toggled, sockets locked — and every later measurement starts from a
dirty baseline.  The journal makes that failure mode recoverable:

* **before the driver mutates a register** it appends one checksummed
  record carrying the before-value, the new value, the cpu, the
  register address and the session epoch (write-ahead ordering: if
  the record is missing, the write did not happen);
* **socket-lock transitions** are journaled the same way (socket,
  owner pid, epoch), so a recovering process can reconstruct which
  locks a dead owner still holds;
* after a crash, :mod:`repro.oskern.recovery` replays the write
  records *backwards*, restoring bit-identical pristine state, and
  reclaims stale locks by probing owner liveness.

Record integrity is per-record CRC32.  A record that fails its
checksum at the **tail** is a torn write — the crash happened during
the append, before the MSR write it guarded, so the record is
truncated and recovery proceeds.  A bad record *followed by valid
records* means the history itself is corrupt; that raises
:class:`~repro.errors.JournalCorruptError` and recovery refuses
(mis-restoring is worse than not restoring).

The journal is in-memory by default (crash tests kill the simulated
process model, not the interpreter) and file-backed when given a
path, which is what makes CLI-level ``--recover`` work across real
process boundaries.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro import trace as _trace
from repro.errors import JournalCorruptError, JournalError
from repro.hw import registers as regs
from repro.hw.spec import ArchSpec
from repro.trace.metrics import MetricsRegistry

#: File header: magic + format version (little-endian u16) + padding.
MAGIC = b"RJRN"
FORMAT_VERSION = 1
HEADER = MAGIC + struct.pack("<HH", FORMAT_VERSION, 0)

#: Record payload: seq u32, epoch u32, op u8, pad u8, cpu u16,
#: address u32, before u64, after u64 — followed by CRC32 u32 over
#: the payload bytes.
_PAYLOAD = struct.Struct("<IIBBHIQQ")
_CRC = struct.Struct("<I")
RECORD_SIZE = _PAYLOAD.size + _CRC.size

OP_WRITE = 1    # cpu/address/before/after describe one MSR write
OP_LOCK = 2     # cpu=socket, address=owner pid, before=epoch
OP_UNLOCK = 3   # cpu=socket, address=owner pid, before=epoch

_OP_NAMES = {OP_WRITE: "write", OP_LOCK: "lock", OP_UNLOCK: "unlock"}


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry (see the module docstring for the op kinds)."""

    seq: int
    epoch: int
    op: int
    cpu: int          # hardware thread for writes; socket for locks
    address: int      # MSR address for writes; owner pid for locks
    before: int       # previous register value; epoch for lock ops
    after: int        # value being written; 0 for lock ops

    @property
    def op_name(self) -> str:
        return _OP_NAMES.get(self.op, f"op{self.op}")

    def encode(self) -> bytes:
        payload = _PAYLOAD.pack(self.seq, self.epoch, self.op, 0,
                                self.cpu, self.address,
                                self.before, self.after)
        return payload + _CRC.pack(zlib.crc32(payload))

    @classmethod
    def decode(cls, blob: bytes) -> "JournalRecord":
        """Decode one record, raising :class:`JournalError` on a bad
        length or checksum (the caller decides torn vs corrupt)."""
        if len(blob) != RECORD_SIZE:
            raise JournalError(
                f"short journal record: {len(blob)} of {RECORD_SIZE} bytes")
        payload, crc = blob[:_PAYLOAD.size], blob[_PAYLOAD.size:]
        if zlib.crc32(payload) != _CRC.unpack(crc)[0]:
            raise JournalError("journal record checksum mismatch")
        seq, epoch, op, _pad, cpu, address, before, after = \
            _PAYLOAD.unpack(payload)
        return cls(seq, epoch, op, cpu, address, before, after)


@dataclass
class JournalScan:
    """Result of validating a journal image."""

    records: list[JournalRecord]
    torn_bytes: int = 0       # truncated tail garbage (expected on crash)

    @property
    def empty(self) -> bool:
        return not self.records

    def write_records(self) -> list[JournalRecord]:
        return [r for r in self.records if r.op == OP_WRITE]

    def outstanding_locks(self) -> dict[int, tuple[int, int]]:
        """socket -> (owner pid, epoch) of locks acquired but never
        released, in journal order (latest transition wins)."""
        held: dict[int, tuple[int, int]] = {}
        for r in self.records:
            if r.op == OP_LOCK:
                held[r.cpu] = (r.address, r.before)
            elif r.op == OP_UNLOCK:
                held.pop(r.cpu, None)
        return held


def state_mutating_addresses(spec: ArchSpec) -> frozenset[int]:
    """Every MSR address the tool layer may legitimately mutate on an
    architecture: PERFEVTSEL/config registers, the counter registers
    themselves (zeroing/preloads), the Intel global- and fixed-control
    registers, the uncore controls, and ``IA32_MISC_ENABLE`` where
    likwid-features applies.

    This is the journal's write-surface classification: the journaling
    driver API refuses addresses outside it (a raw register the tools
    have no business mutating), and the LK5xx lint statically verifies
    the classification covers every register the programmer writes."""
    pmu = spec.pmu
    addrs: set[int] = set()
    for i in range(pmu.num_pmcs):
        addrs.add(pmu.evtsel_address(i))
        addrs.add(pmu.pmc_address(i))
    if pmu.has_fixed:
        addrs.update(regs.IA32_FIXED_CTR0 + i
                     for i in range(regs.NUM_FIXED_CTRS))
        addrs.add(regs.IA32_FIXED_CTR_CTRL)
    if pmu.has_global_ctrl:
        addrs.add(pmu.global_ctrl_address())
    if pmu.has_global_status:
        addrs.add(regs.IA32_PERF_GLOBAL_OVF_CTRL)
    if pmu.has_uncore:
        addrs.add(regs.MSR_UNCORE_PERF_GLOBAL_CTRL)
        for i in range(pmu.num_uncore_pmcs):
            addrs.add(regs.MSR_UNCORE_PERFEVTSEL0 + i)
            addrs.add(regs.MSR_UNCORE_PMC0 + i)
    if pmu.has_uncore_fixed:
        addrs.add(regs.MSR_UNCORE_FIXED_CTR0)
        addrs.add(regs.MSR_UNCORE_FIXED_CTR_CTRL)
    if spec.has_misc_enable:
        addrs.add(regs.IA32_MISC_ENABLE)
    return frozenset(addrs)


class MsrJournal:
    """The write-ahead journal itself: an append-only record log.

    In-memory when ``path`` is None (the test and library default);
    file-backed otherwise, loading any existing journal image at
    construction so a recovering process sees what the crashed one
    left behind.  Appends are flushed per record — a journal that
    lied about durability could not truncate torn writes honestly."""

    def __init__(self, path: str | os.PathLike | None = None, *,
                 metrics: MetricsRegistry | None = None):
        self.path = os.fspath(path) if path is not None else None
        self.metrics = metrics if metrics is not None else _trace.metrics()
        self._records = self.metrics.counter("journal.records")
        self.buffer = bytearray()
        self._seq = 0
        self._epoch = 0
        self._last: tuple | None = None   # consecutive-duplicate filter
        if self.path is not None and os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                self.buffer = bytearray(fh.read())
        if self.buffer:
            self._check_header()
            scan = self.scan()
            if scan.records:
                self._seq = scan.records[-1].seq + 1
                self._epoch = max(r.epoch for r in scan.records)

    # -- low-level image handling ---------------------------------------------

    def _check_header(self) -> None:
        if len(self.buffer) < len(HEADER) or \
                bytes(self.buffer[:len(MAGIC)]) != MAGIC:
            raise JournalCorruptError(
                f"not a journal: bad magic in "
                f"{self.path or '<memory>'!s}")
        version = struct.unpack_from("<H", self.buffer, len(MAGIC))[0]
        if version != FORMAT_VERSION:
            raise JournalError(
                f"journal format v{version} not supported "
                f"(this build writes v{FORMAT_VERSION})")

    def _flush(self, data: bytes) -> None:
        if self.path is None:
            return
        mode = "ab" if os.path.exists(self.path) else "wb"
        with open(self.path, mode) as fh:
            if mode == "wb":
                fh.write(bytes(self.buffer[:-len(data)]))
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def _append(self, epoch: int, op: int, cpu: int, address: int,
                before: int, after: int) -> None:
        # This is the per-MSR-write hot path (benchmarked by
        # test_bench_journal_overhead): pack directly instead of
        # routing through a JournalRecord instance.
        key = (epoch, op, cpu, address, before, after)
        if key == self._last:
            # A retried operation re-journals the identical intent;
            # recovery is idempotent either way, but the log (and the
            # journal.records metric) should not double-count it.
            return
        self._last = key
        if not self.buffer:
            self.buffer += HEADER
            if self.path is not None:
                self._flush(HEADER)
        payload = _PAYLOAD.pack(self._seq, epoch, op, 0, cpu,
                                address, before, after)
        blob = payload + _CRC.pack(zlib.crc32(payload))
        self.buffer += blob
        if self.path is not None:
            self._flush(blob)
        self._seq += 1
        self._records.incr()

    # -- epochs ----------------------------------------------------------------

    def begin_epoch(self) -> int:
        """Allocate the next session epoch (monotonic per journal)."""
        self._epoch += 1
        return self._epoch

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- appends ---------------------------------------------------------------

    def record_write(self, epoch: int, cpu: int, address: int,
                     before: int, after: int) -> None:
        # _append, manually inlined: this runs once per MSR write in
        # every measurement (test_bench_journal_overhead prices it).
        key = (epoch, OP_WRITE, cpu, address, before, after)
        if key == self._last:
            return
        self._last = key
        if not self.buffer:
            self.buffer += HEADER
            if self.path is not None:
                self._flush(HEADER)
        payload = _PAYLOAD.pack(self._seq, epoch, OP_WRITE, 0, cpu,
                                address, before, after)
        blob = payload + _CRC.pack(zlib.crc32(payload))
        self.buffer += blob
        if self.path is not None:
            self._flush(blob)
        self._seq += 1
        self._records.incr()

    def record_lock(self, epoch: int, socket: int, pid: int) -> None:
        self._append(epoch, OP_LOCK, socket, pid, epoch, 0)

    def record_unlock(self, epoch: int, socket: int, pid: int) -> None:
        self._append(epoch, OP_UNLOCK, socket, pid, epoch, 0)

    # -- scanning and retirement ----------------------------------------------

    def scan(self) -> JournalScan:
        """Validate the journal image record by record.

        A checksum/length failure on the *last* record is a torn
        write: it is dropped (and physically truncated, so the next
        scan is clean) because write-ahead ordering guarantees the
        guarded MSR write never happened.  A failure anywhere earlier
        raises :class:`JournalCorruptError`."""
        if not self.buffer:
            return JournalScan([])
        self._check_header()
        body = bytes(self.buffer[len(HEADER):])
        records: list[JournalRecord] = []
        offset = 0
        while offset < len(body):
            chunk = body[offset:offset + RECORD_SIZE]
            try:
                records.append(JournalRecord.decode(chunk))
            except JournalError:
                if offset + RECORD_SIZE < len(body):
                    raise JournalCorruptError(
                        f"journal record at byte {len(HEADER) + offset} "
                        f"is corrupt but later records follow; history "
                        f"is unrecoverable") from None
                torn = len(body) - offset
                del self.buffer[len(HEADER) + offset:]
                self._rewrite()
                self.metrics.incr("journal.torn_records_truncated")
                return JournalScan(records, torn_bytes=torn)
            offset += RECORD_SIZE
        return JournalScan(records)

    def clear(self) -> None:
        """Retire the journal: every guarded mutation was undone or
        cleanly torn down, so the log has nothing left to say."""
        self.buffer.clear()
        self._last = None
        if self.path is not None and os.path.exists(self.path):
            os.unlink(self.path)

    def _rewrite(self) -> None:
        if self.path is not None:
            with open(self.path, "wb") as fh:
                fh.write(bytes(self.buffer))
                fh.flush()
                os.fsync(fh.fileno())

    @property
    def record_count(self) -> int:
        if len(self.buffer) <= len(HEADER):
            return 0
        return (len(self.buffer) - len(HEADER)) // RECORD_SIZE
