"""The load-test harness: hundreds of clients against a fleet.

``likwid-server load-test`` boots a full in-process stack — fleet of
:class:`~repro.server.scheduler.NodeScheduler` nodes, asyncio
multiplexer, JSON-lines TCP listener — and drives it with many
concurrent :class:`~repro.server.client.ServerClient` connections
pulling session requests off one shared work list.  The request mix
is generated deterministically from one seed: a skewed tenant
distribution (tenant 0 offers the most load), a fraction of
long-running sessions (these outlive the lease limit and are
preempted), and a fraction with tight deadlines (these time out while
queued behind contended sockets).

The report reconciles **exact accounting** — every submitted session
terminal as completed / timed-out / rejected / preempted, nothing
unaccounted, nothing failed — and ``verify()`` additionally replays
completed sessions standalone and requires bit-identical results
(:mod:`repro.server.workload`).
"""

from __future__ import annotations

import asyncio
import time as _time
from dataclasses import dataclass, field

from repro.agent.fleet import NodeSpec
from repro.core.perfctr.groups import groups_for
from repro.errors import ServerError
from repro.hw.arch import create_machine
from repro.server.chaos import ChaosPlan
from repro.server.client import ServerClient
from repro.server.protocol import ProtocolServer, recover_protocol
from repro.server.retry import RetryPolicy
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer
from repro.server.wal import ServerWal
from repro.server.workload import (result_from_dict, results_identical,
                                   run_standalone)

#: Client retry policy sized for the crash-restart gap: the server is
#: unreachable while recovery replays the WAL, and every refused
#: connect burns one attempt, so the budget must outlast the gap.
LOADTEST_RETRIES = RetryPolicy(max_attempts=12, backoff_base=0.001,
                               backoff_cap=0.5)

#: Candidate groups, all within single-set counter capacity on every
#: supported architecture (no multiplexing → no schedule-dependent
#: scaling, a precondition for bit-identity under interleaving).
DEFAULT_GROUPS = ("FLOPS_DP", "MEM", "BRANCH")


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test run's shape (fully determined by ``seed``)."""

    sessions: int = 200            # total submissions
    clients: int = 50              # concurrent client connections
    nodes: int = 4                 # fleet size
    tenants: int = 4               # tenant population (skewed load)
    seed: int = 0
    arch: str = "westmere_ep"
    groups: tuple[str, ...] = DEFAULT_GROUPS
    window: float = 0.05           # virtual seconds per window
    windows: int = 2               # windows of a normal session
    long_windows: int = 64         # windows of a long session
    long_fraction: float = 0.05    # sessions that exceed the lease
    deadline_fraction: float = 0.1  # sessions with a tight deadline
    deadline: float = 0.1          # the tight deadline (virtual s)
    lease_limit: float = 1.0       # scheduler preemption threshold
    max_queue: int = 1024          # admission bound per node
    faults: str | None = None      # FaultPlan syntax, per node
    chaos: str | None = None       # ChaosPlan syntax, armed per client
    kill_after: int | None = None  # SIGKILL+restart the server after
    #                                this many terminal sessions

    def __post_init__(self):
        if self.sessions < 1 or self.clients < 1 or self.nodes < 1 \
                or self.tenants < 1:
            raise ServerError("sessions/clients/nodes/tenants must "
                              "be positive")


def node_specs(config: LoadTestConfig) -> list[NodeSpec]:
    faults = config.faults
    specs = []
    for i in range(config.nodes):
        plan = faults
        if plan and "seed=" not in plan:
            plan = f"seed={config.seed + i},{plan}"
        specs.append(NodeSpec(name=f"node{i:03d}", arch=config.arch,
                              seed=config.seed + i, faults=plan))
    return specs


def generate_requests(config: LoadTestConfig) -> list[SessionRequest]:
    """The deterministic request mix.

    Uses one ``random.Random(seed)`` stream; tenant choice is skewed
    (tenant ``t`` offers weight ``tenants - t``), cpu sets are 1-2
    cpus on one socket (occasionally spanning two sockets, a
    multi-socket lease), and the long/tight-deadline fractions are
    decided per request."""
    import random
    rng = random.Random(config.seed)
    machine = create_machine(config.arch)
    spec = machine.spec
    provided = groups_for(spec)
    groups = tuple(g for g in config.groups if g in provided)
    if not groups:
        raise ServerError(f"{config.arch} provides none of "
                          f"{', '.join(config.groups)}")
    weights = [config.tenants - t for t in range(config.tenants)]
    per_socket = spec.num_hwthreads // spec.sockets
    requests = []
    for i in range(config.sessions):
        node = f"node{i % config.nodes:03d}"
        tenant = f"tenant{rng.choices(range(config.tenants), weights)[0]}"
        socket = rng.randrange(spec.sockets)
        base = socket * per_socket
        cpus = tuple(sorted(rng.sample(
            range(base, base + per_socket), rng.choice((1, 1, 2)))))
        if spec.sockets > 1 and rng.random() < 0.1:
            other = (socket + 1) % spec.sockets
            cpus = tuple(sorted(cpus + (other * per_socket,)))
        windows = config.long_windows \
            if rng.random() < config.long_fraction else config.windows
        deadline = config.deadline \
            if rng.random() < config.deadline_fraction else None
        requests.append(SessionRequest(
            node=node, cpus=cpus, group=rng.choice(groups),
            tenant=tenant, windows=windows, window=config.window,
            deadline=deadline, seed=config.seed + i))
    return requests


@dataclass
class LoadTestReport:
    """Everything ``--verify`` and the CI smoke job assert on."""

    config: LoadTestConfig
    submitted: int = 0
    counts: dict = field(default_factory=dict)
    elapsed: float = 0.0           # real seconds, whole run
    queue_wait: dict = field(default_factory=dict)
    tenant_service: dict = field(default_factory=dict)
    sessions: list = field(default_factory=list)   # terminal docs
    archs: dict = field(default_factory=dict)      # node -> arch
    retries: int = 0               # client retry attempts, all causes
    dedup_hits: int = 0            # idempotent replays served
    server_restarts: int = 0       # mid-run SIGKILL + recovery cycles
    chaos: dict = field(default_factory=dict)      # injected fault counts

    @property
    def throughput(self) -> float:
        return self.submitted / self.elapsed if self.elapsed else 0.0

    @property
    def fairness(self) -> float:
        """max/min tenant share of scheduler service time (1.0 is
        perfectly even; only meaningful under saturation)."""
        served = [v for v in self.tenant_service.values() if v > 0]
        if len(served) < 2:
            return 1.0
        return max(served) / min(served)

    def accounting_errors(self) -> list[str]:
        """Exact accounting: every submission terminal, none failed."""
        out = []
        total = sum(self.counts.get(k, 0) for k in
                    ("completed", "timed_out", "rejected", "preempted",
                     "cancelled", "failed"))
        if total != self.submitted:
            out.append(f"accounting hole: {total} terminal != "
                       f"{self.submitted} submitted")
        if self.counts.get("failed", 0):
            out.append(f"{self.counts['failed']} session(s) failed")
        if self.counts.get("pending", 0):
            out.append(f"{self.counts['pending']} session(s) pending")
        if len(self.sessions) != self.submitted:
            out.append(f"client saw {len(self.sessions)} terminal "
                       f"documents != {self.submitted} submitted")
        admitted = self.counts.get("submitted", self.submitted)
        if admitted != self.submitted:
            out.append(f"server admitted {admitted} sessions != "
                       f"{self.submitted} client submissions "
                       f"(a retry was executed twice?)")
        seen = [(doc.get("node"), doc.get("session"))
                for doc in self.sessions]
        if len(set(seen)) != len(seen):
            dupes = len(seen) - len(set(seen))
            out.append(f"{dupes} duplicate terminal document(s) for "
                       f"the same session")
        return out

    def verify(self, *, sample: int | None = None) -> list[str]:
        """Accounting plus standalone bit-identity replay of completed
        sessions (all of them, or an evenly spaced ``sample``)."""
        errors = self.accounting_errors()
        completed = [doc for doc in self.sessions
                     if doc.get("state") == "completed"]
        if sample is not None and sample < len(completed):
            stride = max(1, len(completed) // sample)
            completed = completed[::stride][:sample]
        for doc in completed:
            req = SessionRequest(
                node=doc["node"], cpus=tuple(doc["cpus"]),
                group=doc["group"], tenant=doc["tenant"],
                windows=doc["windows"], window=doc["window"],
                seed=doc["seed"])
            arch = self.archs.get(doc["node"], self.config.arch)
            alone = run_standalone(req, arch)
            served = result_from_dict(doc["result"])
            if not results_identical(served, alone):
                errors.append(
                    f"{doc['node']}/session {doc['session']}: result "
                    f"differs from standalone replay")
        return errors

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "counts": dict(self.counts),
            "elapsed_s": self.elapsed,
            "throughput_sessions_per_s": self.throughput,
            "queue_wait": dict(self.queue_wait),
            "fairness_max_over_min": self.fairness,
            "tenant_service": dict(self.tenant_service),
            "retries": self.retries,
            "dedup_hits": self.dedup_hits,
            "server_restarts": self.server_restarts,
            "chaos_injected": dict(self.chaos),
        }


async def _drive(config: LoadTestConfig) -> LoadTestReport:
    specs = node_specs(config)
    chaos_spec = config.chaos
    if chaos_spec and "seed=" not in chaos_spec:
        chaos_spec = f"seed={config.seed},{chaos_spec}"
    plan = ChaosPlan.from_string(chaos_spec) if chaos_spec else None
    # The WAL is in-memory: the simulated SIGKILL kills the server
    # object, not the interpreter, exactly like the PR 5 crash tests.
    wal = ServerWal() if config.kill_after is not None else None
    server = ReproServer.from_specs(specs,
                                    lease_limit=config.lease_limit,
                                    max_queue=config.max_queue,
                                    wal=wal)
    state = {"proto": ProtocolServer(server)}
    host, port = await state["proto"].start()
    requests = generate_requests(config)
    work = list(reversed(requests))     # pop() preserves order
    report = LoadTestReport(config=config, submitted=len(requests),
                            archs={s.name: s.arch for s in specs})
    clients: list[ServerClient] = []

    async def client_worker(i: int) -> None:
        client = ServerClient(host, port,
                              client_id=f"load-{i:03d}",
                              retry=LOADTEST_RETRIES, chaos=plan)
        clients.append(client)
        try:
            while work:
                req = work.pop()
                doc = await client.submit(req, wait=True)
                report.sessions.append(doc)
        finally:
            await client.close()

    async def killer() -> None:
        """One mid-run SIGKILL + WAL recovery + rebind on the same
        port; the clients ride it out through their retry policies."""
        while len(report.sessions) < config.kill_after and work:
            await asyncio.sleep(0.005)
        old = state["proto"]
        residues = await old.abort()
        new_proto = await recover_protocol(
            specs, wal, residues=residues,
            lease_limit=config.lease_limit,
            max_queue=config.max_queue)
        new_proto.dedup_hits += old.dedup_hits   # carry the counter
        await new_proto.start(host, port)
        state["proto"] = new_proto
        report.server_restarts += 1

    tasks = [client_worker(i) for i in range(config.clients)]
    if config.kill_after is not None:
        tasks.append(killer())
    began = _time.perf_counter()
    try:
        await asyncio.gather(*tasks)
        report.elapsed = _time.perf_counter() - began
        proto = state["proto"]
        status = proto.server.status()
        report.counts = status["total"]
        report.queue_wait = status["queue_wait"]
        report.dedup_hits = proto.dedup_hits
        report.retries = sum(c.retries for c in clients)
        for client in clients:
            if client.chaos is not None:
                for kind, n in client.chaos.injected.items():
                    report.chaos[kind] = report.chaos.get(kind, 0) + n
        for sched in proto.server.nodes.values():
            for t in range(config.tenants):
                tenant = f"tenant{t}"
                report.tenant_service[tenant] = \
                    report.tenant_service.get(tenant, 0.0) \
                    + sched.queue.service(tenant)
    finally:
        await state["proto"].close()
    return report


def run_load_test(config: LoadTestConfig) -> LoadTestReport:
    """Run the whole harness on a private event loop (sync entry
    point for the CLI and the benchmark suite)."""
    return asyncio.run(_drive(config))
