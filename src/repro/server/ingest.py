"""Server-backed agent ingest: SampleBatch over the wire.

``likwid-agent --server HOST:PORT`` swaps its in-process aggregator
lane for a :class:`ServerIngestSink` — every measurement window's
batch is serialized to the JSON-lines protocol's ``ingest`` verb and
aggregated server-side, so a fleet of agents feeds one central
rollup.  The batch round-trip is exact: ``batch_from_dict(
batch_to_dict(b)) == b`` field for field, including NaN metric
values (degraded uncore reads must survive the wire — JSON has no
NaN, so they travel as the string ``"nan"``).
"""

from __future__ import annotations

import math
from collections import deque

from repro import trace as _trace
from repro.agent.batch import AgentSample, SampleBatch
from repro.agent.sinks import Sink
from repro.errors import ServerError


def _value_to_wire(value: float) -> float | str:
    return "nan" if math.isnan(value) else value


def _value_from_wire(value) -> float:
    if value == "nan":
        return math.nan
    return float(value)


def batch_to_dict(batch: SampleBatch) -> dict:
    return {
        "node": batch.node, "group": batch.group,
        "window": batch.window, "time": batch.time,
        "duration": batch.duration, "seq": batch.seq,
        "samples": [
            {"scope": s.scope, "id": s.ident, "metric": s.metric,
             "value": _value_to_wire(s.value), "seq": s.seq}
            for s in batch.samples],
    }


def batch_from_dict(doc: dict) -> SampleBatch:
    try:
        node = doc["node"]
        group = doc["group"]
        window = int(doc["window"])
        time = float(doc["time"])
        duration = float(doc["duration"])
        samples = tuple(
            AgentSample(node, group, window, time, s["scope"],
                        int(s["id"]), s["metric"],
                        _value_from_wire(s["value"]),
                        int(s.get("seq", 0)))
            for s in doc.get("samples", ()))
    except (KeyError, TypeError, ValueError) as exc:
        raise ServerError(f"bad ingest batch: {exc}") from None
    return SampleBatch(node, group, window, time, duration, samples,
                       seq=int(doc.get("seq", 0)))


def _transport_failure(exc: BaseException) -> bool:
    """Did the batch fail to *reach* the server (breaker territory),
    as opposed to the server refusing it (drop territory)?"""
    if isinstance(exc, ServerError):
        return exc.retryable or exc.code in ("retries-exhausted",
                                             "deadline-exceeded")
    return isinstance(exc, (ConnectionError, OSError, EOFError,
                            TimeoutError))


class ServerIngestSink(Sink):
    """An agent sink lane that ships every batch to a likwid-server,
    behind a circuit breaker with a bounded spill ring.

    Takes any object with a ``call(doc) -> dict`` method (the sync
    client).  :meth:`emit` **never raises**: a batch first enters the
    spill ring, then the ring drains to the server in order.  When
    the server is unreachable (the client's own retries exhausted)
    the breaker opens and subsequent emits skip the network entirely
    — probing again with exponentially spaced emits — so one dead
    server costs the agent loop one timeout, not one per window.  A
    full ring evicts oldest-first; evictions are *counted* drops,
    never silent ones.  Accounting is exact at all times::

        offered == shipped + refused + dropped + pending

    Each batch is stamped with an idempotency key when it enters the
    ring (``client.next_seq()``), so a drain retry of a batch whose
    reply was lost deduplicates server-side instead of
    double-counting into the aggregator."""

    kind = "server"

    #: Probe spacing cap: while the breaker is open at steady state,
    #: one emit in 64 touches the network.
    MAX_SKIP = 64

    def __init__(self, client, *, max_batch: int | None = None,
                 spill_capacity: int = 64):
        super().__init__(max_batch=max_batch)
        if spill_capacity < 1:
            raise ValueError("spill capacity must be positive")
        self.client = client
        self.spill_capacity = spill_capacity
        self.offered = 0         # samples handed to the sink
        self.shipped = 0         # samples the server accepted
        self.refused = 0         # samples the server refused (fatal)
        self.dropped = 0         # samples evicted/abandoned unsent
        self.breaker_open = False
        self.breaker_trips = 0
        self.last_error = ""
        self._skip = 0           # emits until the next probe
        self._skip_next = 1      # exponential probe spacing
        self._spill: deque[tuple[dict, int]] = deque()

    @property
    def pending(self) -> int:
        """Samples sitting in the spill ring, not yet shipped."""
        return sum(n for _, n in self._spill)

    def inconsistencies(self) -> list[str]:
        """Exact-accounting check (the agent ``--verify`` surface)."""
        total = self.shipped + self.refused + self.dropped \
            + self.pending
        if self.offered != total:
            return [f"server sink accounting broken: offered "
                    f"{self.offered} != shipped {self.shipped} + "
                    f"refused {self.refused} + dropped {self.dropped}"
                    f" + pending {self.pending}"]
        return []

    def emit(self, batch: SampleBatch) -> None:
        doc = {"op": "ingest", "batch": batch_to_dict(batch)}
        client_id = getattr(self.client, "client_id", None)
        next_seq = getattr(self.client, "next_seq", None)
        if client_id is not None and next_seq is not None:
            doc["client"] = client_id
            doc["seq"] = next_seq()
        self.offered += len(batch)
        self._spill.append((doc, len(batch)))
        while len(self._spill) > self.spill_capacity:
            _, evicted = self._spill.popleft()
            self.dropped += evicted
            _trace.incr("ingest.breaker.dropped", evicted)
        if self.breaker_open:
            self._skip -= 1
            if self._skip > 0:
                return
        self.drain()

    def drain(self) -> bool:
        """Ship the spill ring in order; returns True when it fully
        drained (breaker closed), False when the server is still
        unreachable (breaker open, spill retained)."""
        while self._spill:
            doc, n = self._spill[0]
            try:
                reply = self.client.call(doc)
            except Exception as exc:
                if _transport_failure(exc):
                    self._trip(exc)
                    return False
                # The server refused the batch outright (bad batch,
                # unknown verb...): dropping it is the only honest
                # move — it will never be accepted.
                self._spill.popleft()
                self.refused += n
                self.last_error = str(exc)
                _trace.incr("ingest.breaker.refused", n)
                continue
            self._spill.popleft()
            if not reply.get("ok"):
                self.refused += n
                self.last_error = str(reply.get("error", ""))
                _trace.incr("ingest.breaker.refused", n)
                continue
            self.shipped += reply.get("accepted", 0)
        if self.breaker_open:
            self.breaker_open = False
            self._skip_next = 1
            _trace.incr("ingest.breaker.closed")
        return True

    def _trip(self, exc: BaseException) -> None:
        self.last_error = str(exc)
        if not self.breaker_open:
            self.breaker_open = True
            self.breaker_trips += 1
            _trace.incr("ingest.breaker.trips")
        else:
            self._skip_next = min(self._skip_next * 2, self.MAX_SKIP)
        self._skip = self._skip_next

    def close(self) -> None:
        """Final drain attempt; whatever the server still cannot take
        is abandoned as counted drops (the agent is exiting — there
        is no later reconnect to wait for)."""
        self.drain()
        while self._spill:
            _, n = self._spill.popleft()
            self.dropped += n
            _trace.incr("ingest.breaker.dropped", n)
