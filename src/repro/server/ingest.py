"""Server-backed agent ingest: SampleBatch over the wire.

``likwid-agent --server HOST:PORT`` swaps its in-process aggregator
lane for a :class:`ServerIngestSink` — every measurement window's
batch is serialized to the JSON-lines protocol's ``ingest`` verb and
aggregated server-side, so a fleet of agents feeds one central
rollup.  The batch round-trip is exact: ``batch_from_dict(
batch_to_dict(b)) == b`` field for field, including NaN metric
values (degraded uncore reads must survive the wire — JSON has no
NaN, so they travel as the string ``"nan"``).
"""

from __future__ import annotations

import math

from repro.agent.batch import AgentSample, SampleBatch
from repro.agent.sinks import Sink
from repro.errors import ServerError


def _value_to_wire(value: float) -> float | str:
    return "nan" if math.isnan(value) else value


def _value_from_wire(value) -> float:
    if value == "nan":
        return math.nan
    return float(value)


def batch_to_dict(batch: SampleBatch) -> dict:
    return {
        "node": batch.node, "group": batch.group,
        "window": batch.window, "time": batch.time,
        "duration": batch.duration, "seq": batch.seq,
        "samples": [
            {"scope": s.scope, "id": s.ident, "metric": s.metric,
             "value": _value_to_wire(s.value), "seq": s.seq}
            for s in batch.samples],
    }


def batch_from_dict(doc: dict) -> SampleBatch:
    try:
        node = doc["node"]
        group = doc["group"]
        window = int(doc["window"])
        time = float(doc["time"])
        duration = float(doc["duration"])
        samples = tuple(
            AgentSample(node, group, window, time, s["scope"],
                        int(s["id"]), s["metric"],
                        _value_from_wire(s["value"]),
                        int(s.get("seq", 0)))
            for s in doc.get("samples", ()))
    except (KeyError, TypeError, ValueError) as exc:
        raise ServerError(f"bad ingest batch: {exc}") from None
    return SampleBatch(node, group, window, time, duration, samples,
                       seq=int(doc.get("seq", 0)))


class ServerIngestSink(Sink):
    """An agent sink lane that ships every batch to a likwid-server.

    Takes any object with a ``call(doc) -> dict`` method (the sync
    client); keeps the lane accounting exact — a batch the server
    refuses raises, it is never silently dropped."""

    kind = "server"

    def __init__(self, client, *, max_batch: int | None = None):
        super().__init__(max_batch=max_batch)
        self.client = client
        self.shipped = 0

    def emit(self, batch: SampleBatch) -> None:
        reply = self.client.call({"op": "ingest",
                                  "batch": batch_to_dict(batch)})
        if not reply.get("ok"):
            raise ServerError(
                f"server refused ingest: {reply.get('error')}")
        self.shipped += reply.get("accepted", 0)
