"""Client API for likwid-server.

Two clients over the same JSON-lines protocol:

* :class:`ServerClient` — asyncio, one request pipelined at a time
  per connection; the load harness opens hundreds of these.
* :class:`SyncServerClient` — a blocking socket client for
  synchronous callers: ``likwid-server submit`` and the agent's
  :class:`~repro.server.ingest.ServerIngestSink`.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.errors import ServerError
from repro.server.protocol import request_to_dict
from repro.server.scheduler import SessionRequest


class ServerClient:
    """Async JSON-lines client (one outstanding request at a time)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def __aenter__(self) -> "ServerClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def call(self, doc: dict) -> dict:
        """One request/response round trip (serialized per client —
        the protocol matches replies to requests by order)."""
        if self._writer is None:
            raise ServerError("client is not connected")
        async with self._lock:
            self._writer.write(json.dumps(doc).encode() + b"\n")
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServerError("server closed the connection")
        return json.loads(line)

    async def ping(self) -> dict:
        return self._checked(await self.call({"op": "ping"}))

    async def status(self) -> dict:
        return self._checked(await self.call({"op": "status"}))

    async def submit(self, request: SessionRequest, *,
                     wait: bool = True) -> dict:
        """Submit one session; with ``wait`` (default) blocks until
        the terminal state and returns the full session document."""
        doc = request_to_dict(request)
        doc["op"] = "submit"
        doc["wait"] = wait
        return self._checked(await self.call(doc))

    async def wait(self, node: str, session_id: int) -> dict:
        return self._checked(await self.call(
            {"op": "wait", "node": node, "session": session_id}))

    async def cancel(self, node: str, session_id: int) -> dict:
        return self._checked(await self.call(
            {"op": "cancel", "node": node, "session": session_id}))

    @staticmethod
    def _checked(reply: dict) -> dict:
        if not reply.get("ok"):
            raise ServerError(reply.get("error", "server error"))
        return reply


class SyncServerClient:
    """Blocking socket client for synchronous call sites."""

    def __init__(self, host: str, port: int, *,
                 timeout: float | None = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    def __enter__(self) -> "SyncServerClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._sock is not None:
            self._file.close()
            self._sock.close()
            self._sock = None
            self._file = None

    def call(self, doc: dict) -> dict:
        if self._sock is None:
            raise ServerError("client is not connected")
        self._file.write(json.dumps(doc).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServerError("server closed the connection")
        return json.loads(line)

    def ping(self) -> dict:
        return ServerClient._checked(self.call({"op": "ping"}))

    def status(self) -> dict:
        return ServerClient._checked(self.call({"op": "status"}))

    def submit(self, request: SessionRequest, *,
               wait: bool = True) -> dict:
        doc = request_to_dict(request)
        doc["op"] = "submit"
        doc["wait"] = wait
        return ServerClient._checked(self.call(doc))

    def wait(self, node: str, session_id: int) -> dict:
        return ServerClient._checked(self.call(
            {"op": "wait", "node": node, "session": session_id}))

    def cancel(self, node: str, session_id: int) -> dict:
        return ServerClient._checked(self.call(
            {"op": "cancel", "node": node, "session": session_id}))


def parse_endpoint(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → tuple (the --server argument syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServerError(f"bad server endpoint {text!r} "
                          f"(expected HOST:PORT)")
    try:
        return host, int(port)
    except ValueError:
        raise ServerError(f"bad server port in {text!r}") from None
