"""Client API for likwid-server.

Two clients over the same JSON-lines protocol:

* :class:`ServerClient` — asyncio, one request pipelined at a time
  per connection; the load harness opens hundreds of these.
* :class:`SyncServerClient` — a blocking socket client for
  synchronous callers: ``likwid-server submit`` and the agent's
  :class:`~repro.server.ingest.ServerIngestSink`.

Both are **retrying** clients: every call runs under a shared
:class:`~repro.server.retry.RetryPolicy` (seeded-jitter exponential
backoff keyed by the client id), reconnects automatically after any
transport failure, and honours a per-call wall-clock ``deadline``.
``submit``/``wait``/``cancel``/``ingest`` carry idempotency keys
(``client`` + monotonically increasing ``seq``, stamped once per
logical operation and stable across its retries), so a retry after a
lost reply lands on the server's dedup window instead of re-executing
— the invariant the chaos tests hammer.

A :class:`~repro.server.chaos.ChaosPlan` can be armed on either
client; faults are injected at the stream/socket seam (see the chaos
module docstring) and surface as retryable
:class:`~repro.errors.ChaosError`, which the retry loop absorbs
exactly like genuine network weather.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import random
import socket
import time

from repro import trace as _trace
from repro.errors import ChaosError, ServerError
from repro.server import chaos as _chaos
from repro.server.chaos import ChaosPlan
from repro.server.retry import RetryPolicy, retryable
from repro.server.scheduler import SessionRequest, request_to_dict

_CLIENT_IDS = itertools.count(1)


def _default_client_id() -> str:
    return f"client-{os.getpid()}-{next(_CLIENT_IDS)}"


def _reply_error(reply: dict) -> ServerError:
    return ServerError(reply.get("error", "server error"),
                       code=reply.get("code", "server-error"),
                       retryable=bool(reply.get("retryable", False)))


class _CallClock:
    """Per-call deadline bookkeeping (wall clock, not virtual)."""

    def __init__(self, deadline: float | None):
        self.deadline = deadline
        self.start = time.monotonic()

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        left = self.deadline - (time.monotonic() - self.start)
        if left <= 0.0:
            raise ServerError(
                f"call deadline of {self.deadline}s exceeded",
                code="deadline-exceeded")
        return left


class ServerClient:
    """Async JSON-lines client (one outstanding request at a time).

    ``retry=None`` (or :data:`~repro.server.retry.NO_RETRY`) restores
    PR 9's fail-fast behaviour; ``deadline`` is the default per-call
    wall-clock budget (None = wait forever, the load-harness default
    since terminal waits are legitimately long)."""

    def __init__(self, host: str, port: int, *,
                 client_id: str | None = None,
                 retry: RetryPolicy | None = None,
                 deadline: float | None = None,
                 chaos: ChaosPlan | None = None):
        self.host = host
        self.port = port
        self.client_id = client_id if client_id is not None \
            else _default_client_id()
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline = deadline
        self.chaos = chaos.arm(self.client_id) \
            if chaos is not None and chaos.active else None
        self.retries = 0
        self._rng = random.Random(f"retry:{self.client_id}")
        self._seq = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def __aenter__(self) -> "ServerClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        if self.chaos is not None and self.chaos.refuse_connect():
            raise ChaosError("connection refused (injected)",
                             kind="refused")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        """Flush and close the connection.  Waits for the transport
        to actually close — dropping the writer reference without
        ``wait_closed`` loses buffered data and leaks the transport
        until GC."""
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _abort(self) -> None:
        """Sever the connection without ceremony (chaos and retry
        paths; the next attempt reconnects)."""
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- the retrying call loop ------------------------------------------------

    async def call(self, doc: dict, *,
                   deadline: float | None = None) -> dict:
        """One request/response round trip (serialized per client —
        the protocol matches replies to requests by order), retried
        under the client's policy.  Returns the reply object; error
        replies the server marked retryable are retried in here, so a
        returned error reply is always terminal."""
        clock = _CallClock(deadline if deadline is not None
                           else self.deadline)
        attempt = 0
        async with self._lock:
            while True:
                try:
                    return await self._attempt(doc, clock)
                except Exception as exc:
                    if isinstance(exc, ServerError) \
                            and exc.code == "deadline-exceeded":
                        raise
                    if not retryable(exc):
                        raise
                    attempt += 1
                    self.retries += 1
                    _trace.incr("server.retries")
                    self._abort()
                    if attempt >= self.retry.max_attempts:
                        raise ServerError(
                            f"retries exhausted after {attempt} "
                            f"attempt(s): {exc}",
                            code="retries-exhausted") from exc
                    clock.remaining()
                    await asyncio.sleep(
                        self.retry.delay(attempt - 1, self._rng))

    async def _attempt(self, doc: dict, clock: _CallClock) -> dict:
        if self._writer is None:
            remaining = clock.remaining()
            if remaining is None:
                await self.connect()
            else:
                await asyncio.wait_for(self.connect(), remaining)
        data = json.dumps(doc).encode() + b"\n"
        ch = self.chaos
        fate = _chaos.DELIVER
        if ch is not None:
            pause = ch.delay()
            if pause:
                await asyncio.sleep(pause)
            fate = ch.request_fate()
            if fate == _chaos.TORN_REQUEST:
                self._writer.write(ch.tear(data))
                await self._writer.drain()
                self._abort()
                raise ChaosError("connection lost mid-request "
                                 "(injected)", kind="torn-request")
            if fate == _chaos.DUPLICATE:
                data = data + data
        self._writer.write(data)
        await self._writer.drain()
        if ch is not None:
            reply_fate = ch.reply_fate()
            if reply_fate == _chaos.DROP_REPLY:
                self._abort()
                raise ChaosError("connection lost before reply "
                                 "(injected)", kind="dropped-reply")
            if reply_fate == _chaos.TORN_REPLY:
                await self._readline(clock)   # keep stream cadence
                self._abort()
                raise ChaosError("reply line torn mid-JSON "
                                 "(injected)", kind="torn-reply")
        line = await self._readline(clock)
        if fate == _chaos.DUPLICATE:
            # The duplicate delivery produced a second reply (or a
            # dedup replay); it must leave the stream before the next
            # request keeps order.
            await self._readline(clock)
        try:
            reply = json.loads(line)
        except ValueError:
            raise ServerError("torn reply: response line is not JSON",
                              code="torn-reply", retryable=True) \
                from None
        if not reply.get("ok") and reply.get("retryable"):
            raise _reply_error(reply)
        return reply

    async def _readline(self, clock: _CallClock) -> bytes:
        remaining = clock.remaining()
        if remaining is None:
            line = await self._reader.readline()
        else:
            line = await asyncio.wait_for(self._reader.readline(),
                                          remaining)
        if not line:
            raise ServerError("server closed the connection",
                              code="connection-lost", retryable=True)
        return line

    # -- verbs -----------------------------------------------------------------

    def _stamp(self, doc: dict) -> dict:
        """Attach the idempotency key: stamped once per logical
        operation, stable across every retry of it."""
        self._seq += 1
        doc["client"] = self.client_id
        doc["seq"] = self._seq
        return doc

    async def ping(self, *, deadline: float | None = None) -> dict:
        return self._checked(await self.call({"op": "ping"},
                                             deadline=deadline))

    async def status(self, *, deadline: float | None = None) -> dict:
        return self._checked(await self.call({"op": "status"},
                                             deadline=deadline))

    async def submit(self, request: SessionRequest, *,
                     wait: bool = True,
                     deadline: float | None = None) -> dict:
        """Submit one session; with ``wait`` (default) blocks until
        the terminal state and returns the full session document."""
        doc = request_to_dict(request)
        doc["op"] = "submit"
        doc["wait"] = wait
        return self._checked(await self.call(self._stamp(doc),
                                             deadline=deadline))

    async def wait(self, node: str, session_id: int, *,
                   deadline: float | None = None) -> dict:
        return self._checked(await self.call(
            {"op": "wait", "node": node, "session": session_id},
            deadline=deadline))

    async def cancel(self, node: str, session_id: int, *,
                     deadline: float | None = None) -> dict:
        return self._checked(await self.call(self._stamp(
            {"op": "cancel", "node": node, "session": session_id}),
            deadline=deadline))

    @staticmethod
    def _checked(reply: dict) -> dict:
        if not reply.get("ok"):
            raise _reply_error(reply)
        return reply


class SyncServerClient:
    """Blocking socket client for synchronous call sites — same
    retry/deadline/idempotency/chaos contract as the async client.

    ``timeout`` caps a single socket operation; ``deadline`` caps a
    whole logical call across all its retries."""

    def __init__(self, host: str, port: int, *,
                 timeout: float | None = 30.0,
                 client_id: str | None = None,
                 retry: RetryPolicy | None = None,
                 deadline: float | None = None,
                 chaos: ChaosPlan | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id if client_id is not None \
            else _default_client_id()
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline = deadline
        self.chaos = chaos.arm(self.client_id) \
            if chaos is not None and chaos.active else None
        self.retries = 0
        self._rng = random.Random(f"retry:{self.client_id}")
        self._seq = 0
        self._sock: socket.socket | None = None
        self._file = None

    def __enter__(self) -> "SyncServerClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def connect(self) -> None:
        if self.chaos is not None and self.chaos.refuse_connect():
            raise ChaosError("connection refused (injected)",
                             kind="refused")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close file and socket; exception-safe — a failing buffered
        flush in ``_file.close()`` must never leak the socket."""
        sock, self._sock = self._sock, None
        file, self._file = self._file, None
        if sock is None:
            return
        try:
            if file is not None:
                file.close()
        except (OSError, ValueError):
            pass
        finally:
            sock.close()

    # -- the retrying call loop ------------------------------------------------

    def call(self, doc: dict, *,
             deadline: float | None = None) -> dict:
        clock = _CallClock(deadline if deadline is not None
                           else self.deadline)
        attempt = 0
        while True:
            try:
                return self._attempt(doc, clock)
            except Exception as exc:
                if isinstance(exc, ServerError) \
                        and exc.code == "deadline-exceeded":
                    raise
                if not retryable(exc):
                    raise
                attempt += 1
                self.retries += 1
                _trace.incr("server.retries")
                self.close()
                if attempt >= self.retry.max_attempts:
                    raise ServerError(
                        f"retries exhausted after {attempt} "
                        f"attempt(s): {exc}",
                        code="retries-exhausted") from exc
                clock.remaining()
                time.sleep(self.retry.delay(attempt - 1, self._rng))

    def _attempt(self, doc: dict, clock: _CallClock) -> dict:
        if self._sock is None:
            clock.remaining()
            self.connect()
        data = json.dumps(doc).encode() + b"\n"
        ch = self.chaos
        fate = _chaos.DELIVER
        if ch is not None:
            pause = ch.delay()
            if pause:
                time.sleep(pause)
            fate = ch.request_fate()
            if fate == _chaos.TORN_REQUEST:
                self._file.write(ch.tear(data))
                self._file.flush()
                self.close()
                raise ChaosError("connection lost mid-request "
                                 "(injected)", kind="torn-request")
            if fate == _chaos.DUPLICATE:
                data = data + data
        self._file.write(data)
        self._file.flush()
        if ch is not None:
            reply_fate = ch.reply_fate()
            if reply_fate == _chaos.DROP_REPLY:
                self.close()
                raise ChaosError("connection lost before reply "
                                 "(injected)", kind="dropped-reply")
            if reply_fate == _chaos.TORN_REPLY:
                self._readline(clock)
                self.close()
                raise ChaosError("reply line torn mid-JSON "
                                 "(injected)", kind="torn-reply")
        line = self._readline(clock)
        if fate == _chaos.DUPLICATE:
            self._readline(clock)
        try:
            reply = json.loads(line)
        except ValueError:
            raise ServerError("torn reply: response line is not JSON",
                              code="torn-reply", retryable=True) \
                from None
        if not reply.get("ok") and reply.get("retryable"):
            raise _reply_error(reply)
        return reply

    def _readline(self, clock: _CallClock) -> bytes:
        remaining = clock.remaining()
        if remaining is not None:
            self._sock.settimeout(min(remaining, self.timeout)
                                  if self.timeout is not None
                                  else remaining)
        try:
            line = self._file.readline()
        except socket.timeout:
            raise TimeoutError("timed out waiting for reply") from None
        if not line:
            raise ServerError("server closed the connection",
                              code="connection-lost", retryable=True)
        return line

    # -- verbs -----------------------------------------------------------------

    def _stamp(self, doc: dict) -> dict:
        self._seq += 1
        doc["client"] = self.client_id
        doc["seq"] = self._seq
        return doc

    def next_seq(self) -> int:
        """Allocate an idempotency sequence number for a caller that
        stamps its own requests (the ingest sink's spill ring stamps
        each batch once so a drained retry still deduplicates)."""
        self._seq += 1
        return self._seq

    def ping(self, *, deadline: float | None = None) -> dict:
        return ServerClient._checked(self.call({"op": "ping"},
                                               deadline=deadline))

    def status(self, *, deadline: float | None = None) -> dict:
        return ServerClient._checked(self.call({"op": "status"},
                                               deadline=deadline))

    def submit(self, request: SessionRequest, *, wait: bool = True,
               deadline: float | None = None) -> dict:
        doc = request_to_dict(request)
        doc["op"] = "submit"
        doc["wait"] = wait
        return ServerClient._checked(self.call(self._stamp(doc),
                                               deadline=deadline))

    def wait(self, node: str, session_id: int, *,
             deadline: float | None = None) -> dict:
        return ServerClient._checked(self.call(
            {"op": "wait", "node": node, "session": session_id},
            deadline=deadline))

    def cancel(self, node: str, session_id: int, *,
               deadline: float | None = None) -> dict:
        return ServerClient._checked(self.call(self._stamp(
            {"op": "cancel", "node": node, "session": session_id}),
            deadline=deadline))


def parse_endpoint(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → tuple (the --server argument syntax)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ServerError(f"bad server endpoint {text!r} "
                          f"(expected HOST:PORT)", code="bad-request")
    try:
        return host, int(port)
    except ValueError:
        raise ServerError(f"bad server port in {text!r}",
                          code="bad-request") from None
