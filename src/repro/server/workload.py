"""Standalone replay: the bit-identity oracle for server sessions.

A server-scheduled session must produce *exactly* the result the same
measurement would produce standalone — same architecture, seed, cpu
set, group and windows on a freshly created machine, no contention,
no faults.  This holds because session counts are baseline-subtracted
deltas (accumulated machine state cancels), the synthetic workload is
a pure function of (seed, window index, cpu, duration), uncore
application is scoped to the session's own sockets, and the session's
``wall_time`` is its own accumulated window time.  Transient injected
faults are absorbed by retries and never change counts, so the replay
runs fault-free.

``run_standalone`` is what ``likwid-server load-test --verify`` calls
per completed session; :func:`results_identical` is the comparison —
field-for-field equality on counts and metrics, NaN == NaN.
"""

from __future__ import annotations

import math

from repro.agent.scheduler import SyntheticLoad
from repro.core.perfctr.measurement import (LikwidPerfCtr,
                                            MeasurementResult)
from repro.hw.arch import create_machine
from repro.oskern.access import open_backend
from repro.server.scheduler import SERVER_RETRIES, SessionRequest


def sockets_of(spec, cpus) -> tuple[int, ...]:
    """The sockets a cpu set spans (the lease footprint)."""
    return tuple(sorted({spec.socket_of(cpu) for cpu in cpus}))


def run_standalone(request: SessionRequest,
                   arch: str) -> MeasurementResult:
    """Run one session request to completion on a private machine —
    no server, no contention, no faults — and return its result."""
    machine = create_machine(arch)
    backend = open_backend("msr", machine)
    perfctr = LikwidPerfCtr(machine, backend=backend,
                            retry_policy=SERVER_RETRIES)
    cpus = list(request.cpus)
    workload = SyntheticLoad(machine, cpus, seed=request.seed,
                             sockets=sockets_of(machine.spec, cpus))
    run_time = 0.0
    with perfctr.session(cpus, request.group) as session:
        for window in range(request.windows):
            run_time += workload(window, request.group,
                                 request.window)
        session.stop()
        return session.read(wall_time=run_time)


def _same(a: float, b: float) -> bool:
    if math.isnan(a) and math.isnan(b):
        return True
    return a == b


def results_identical(a: MeasurementResult,
                      b: MeasurementResult) -> bool:
    """Bit-identical counts and metrics (NaN matches NaN; retry
    counts and warnings are excluded — fault absorption is allowed
    to differ, values are not)."""
    if sorted(a.counts) != sorted(b.counts):
        return False
    for cpu in a.counts:
        ca, cb = a.counts[cpu], b.counts[cpu]
        if sorted(ca) != sorted(cb):
            return False
        if not all(_same(ca[ev], cb[ev]) for ev in ca):
            return False
    if sorted(a.metrics) != sorted(b.metrics):
        return False
    for cpu in a.metrics:
        ma, mb = a.metrics[cpu], b.metrics[cpu]
        if sorted(ma) != sorted(mb):
            return False
        if not all(_same(ma[m], mb[m]) for m in ma):
            return False
    return _same(a.wall_time, b.wall_time)


def result_from_dict(doc: dict) -> MeasurementResult:
    """Rebuild a result from a session document's ``result`` field
    (the protocol's wire form) for client-side verification."""
    def _num(value):
        return math.nan if value is None else float(value)

    return MeasurementResult(
        cpus=sorted(int(c) for c in doc.get("counts", {})),
        counts={int(c): {ev: _num(v) for ev, v in events.items()}
                for c, events in doc.get("counts", {}).items()},
        metrics={int(c): {m: _num(v) for m, v in metrics.items()}
                 for c, metrics in doc.get("metrics", {}).items()},
        wall_time=float(doc.get("wall_time", 0.0)),
        warnings=list(doc.get("warnings", ())),
        io_retries=int(doc.get("io_retries", 0)))
