"""likwid-server: concurrent measurement sessions over shared nodes.

The tenth front-end (ISSUE 9).  Standalone tools resolve uncore
contention by degrading (socket lock held → NaN); the server resolves
it by *scheduling* — a deficit-fair wait queue with aging, virtual-
clock deadlines, and preemption of over-held leases through the
crash-recovery machinery — while every granted session still runs the
exact PR 3 measurement pipeline and returns results bit-identical to
a standalone run.
"""

from repro.server.chaos import ChaosPlan, ChaosState
from repro.server.client import (ServerClient, SyncServerClient,
                                 parse_endpoint)
from repro.server.ingest import (ServerIngestSink, batch_from_dict,
                                 batch_to_dict)
from repro.server.loadtest import (LoadTestConfig, LoadTestReport,
                                   generate_requests, run_load_test)
from repro.server.protocol import (ProtocolServer, recover_protocol,
                                   request_from_dict, request_to_dict)
from repro.server.retry import NO_RETRY, RetryPolicy
from repro.server.scheduler import (NodeResidue, NodeScheduler,
                                    ServerSession, SessionRequest,
                                    SessionState)
from repro.server.server import ReproServer, SessionHandle
from repro.server.wal import ServerWal, WalReplay
from repro.server.workload import (results_identical, run_standalone,
                                   sockets_of)

__all__ = [
    "ChaosPlan", "ChaosState", "LoadTestConfig", "LoadTestReport",
    "NO_RETRY", "NodeResidue", "NodeScheduler", "ProtocolServer",
    "ReproServer", "RetryPolicy", "ServerClient", "ServerIngestSink",
    "ServerSession", "ServerWal", "SessionHandle", "SessionRequest",
    "SessionState", "SyncServerClient", "WalReplay",
    "batch_from_dict", "batch_to_dict", "generate_requests",
    "parse_endpoint", "recover_protocol", "request_from_dict",
    "request_to_dict", "results_identical", "run_load_test",
    "run_standalone", "sockets_of",
]
