"""The asyncio multiplexer over per-node schedulers.

:class:`ReproServer` hosts many :class:`~repro.server.scheduler
.NodeScheduler` instances — one per simulated node — and drives each
from its own asyncio task.  The scheduler cores are synchronous and
deterministic (virtual clocks, no real timers); asyncio contributes
only the *concurrency structure*: hundreds of clients submitting and
awaiting sessions while the node tasks interleave window execution.
Because no wall-clock timers participate, the event loop's FIFO ready
queue keeps the whole server replayable.

Clients get a :class:`SessionHandle` back from :meth:`ReproServer
.submit` and ``await handle.wait()`` for the terminal state — exactly
one of completed / timed-out / rejected / preempted / cancelled /
failed, the accounting the load harness reconciles.
"""

from __future__ import annotations

import asyncio

from repro.agent.fleet import NodeSpec
from repro.errors import ServerError
from repro.server.scheduler import (NodeResidue, NodeScheduler,
                                    ServerSession, SessionRequest,
                                    SessionState)
from repro.server.wal import ServerWal
from repro.trace.metrics import Histogram


class SessionHandle:
    """A client's awaitable view of one submitted session."""

    def __init__(self, session: ServerSession):
        self.session = session
        self._done = asyncio.Event()
        if session.state.terminal:
            self._done.set()

    @property
    def id(self) -> int:
        return self.session.id

    @property
    def state(self) -> SessionState:
        return self.session.state

    async def wait(self, timeout: float | None = None) -> ServerSession:
        """Block until the session reaches a terminal state.

        ``timeout`` is *real* seconds — a liveness guard for callers,
        not part of the scheduling model (deadlines are virtual and
        live in :class:`SessionRequest`)."""
        if timeout is None:
            await self._done.wait()
        else:
            await asyncio.wait_for(self._done.wait(), timeout)
        return self.session

    def _resolve(self) -> None:
        self._done.set()


class ReproServer:
    """Concurrent measurement-session server over a fleet of nodes.

    Use as an async context manager::

        async with ReproServer.from_specs(nodes) as server:
            handle = await server.submit(SessionRequest(...))
            session = await handle.wait()
    """

    def __init__(self, schedulers: dict[str, NodeScheduler], *,
                 wal: ServerWal | None = None):
        if not schedulers:
            raise ServerError("server needs at least one node")
        self.nodes = dict(schedulers)
        self.wal = wal
        self.queue_wait_hist = Histogram("server.queue_wait.s")
        self._handles: dict[tuple[str, int], SessionHandle] = {}
        self._wake: dict[str, asyncio.Event] = {}
        self._tasks: list[asyncio.Task] = []
        self._closing = False
        for name, sched in self.nodes.items():
            sched.queue_wait_hist = self.queue_wait_hist
            sched.on_terminal = self._on_terminal(name)
            sched.on_grant = self._on_grant(name)

    @classmethod
    def from_specs(cls, specs: list[NodeSpec], *,
                   lease_limit: float = 1.0,
                   max_queue: int = 64,
                   wal: ServerWal | None = None,
                   residues: dict[str, NodeResidue] | None = None
                   ) -> "ReproServer":
        """Build one scheduler per fleet :class:`NodeSpec` (the same
        node description the agent fleet uses, so a server-backed
        fleet and a standalone fleet are configured identically).
        ``residues`` rebuilds named nodes on the hardware a crashed
        incarnation left behind (callers must then run each node's
        ``recover()`` — :func:`repro.server.protocol.recover_protocol`
        does all of it)."""
        residues = residues or {}
        schedulers = {
            spec.name: NodeScheduler(
                spec.name, spec.arch, access_mode=spec.access_mode,
                faults=spec.faults, lease_limit=lease_limit,
                max_queue=max_queue, residue=residues.get(spec.name))
            for spec in specs}
        return cls(schedulers, wal=wal)

    def _on_terminal(self, node: str):
        def resolve(session: ServerSession) -> None:
            if self.wal is not None:
                self.wal.record_terminal(node, session.as_dict())
            handle = self._handles.get((node, session.id))
            if handle is not None:
                handle._resolve()
        return resolve

    def _on_grant(self, node: str):
        def record(session: ServerSession) -> None:
            if self.wal is not None:
                self.wal.record_grant(node, session.id)
        return record

    # -- lifecycle -------------------------------------------------------------

    async def __aenter__(self) -> "ReproServer":
        self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def start(self) -> None:
        if self._tasks:
            return
        self._closing = False
        for name in self.nodes:
            self._wake[name] = asyncio.Event()
            self._tasks.append(asyncio.ensure_future(
                self._node_loop(name)))

    async def close(self) -> None:
        """Drain every node to idle, then stop the node tasks."""
        self._closing = True
        for event in self._wake.values():
            event.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    async def crash(self) -> dict[str, NodeResidue]:
        """Simulated SIGKILL of the whole server process: node tasks
        are cancelled immediately (no draining — queued sessions are
        simply abandoned to the WAL), every running session's
        simulated process dies without teardown, and the per-node
        hardware residue is returned for the next incarnation."""
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._wake.clear()
        return {name: sched.crash()
                for name, sched in self.nodes.items()}

    async def _node_loop(self, name: str) -> None:
        """One node's driver task: sleep until woken by a submission,
        then step the scheduler until it goes idle — yielding to the
        event loop after every quantum so other nodes' windows and new
        client submissions interleave."""
        sched = self.nodes[name]
        wake = self._wake[name]
        while True:
            if not sched.pending:
                if self._closing:
                    return
                await wake.wait()
                wake.clear()
                continue
            progressed = sched.step()
            if not progressed and sched.pending:
                raise ServerError(
                    f"{name}: scheduler wedged with "
                    f"{sched.pending} session(s) pending")
            await asyncio.sleep(0)

    # -- client surface --------------------------------------------------------

    def node(self, name: str) -> NodeScheduler:
        try:
            return self.nodes[name]
        except KeyError:
            raise ServerError(
                f"unknown node {name!r} (serving: "
                f"{', '.join(sorted(self.nodes))})",
                code="unknown-node") from None

    async def submit(self, request: SessionRequest, *,
                     session_id: int | None = None,
                     intent: int | None = None) -> SessionHandle:
        """Admit one session request; returns immediately with a
        handle (the session may already be terminal — rejected — or
        already running if its sockets were free).  ``session_id``
        re-admits a recovered pre-crash submission under its original
        id.  ``intent`` ties the admission to a WAL intent record: the
        ADMIT record is written here, in the same event-loop step that
        creates the session, so a crash can never separate the two —
        if it could, the replay would see the intent without the admit
        and resubmit a session that already ran (double execution)."""
        sched = self.node(request.node)
        session = sched.submit(request, session_id=session_id)
        if intent is not None and self.wal is not None:
            self.wal.record_admit(intent, request.node, session.id)
        handle = SessionHandle(session)
        self._handles[(request.node, session.id)] = handle
        self._wake[request.node].set()
        await asyncio.sleep(0)      # let the node task pick it up
        return handle

    async def cancel(self, node: str, session_id: int) -> bool:
        ok = self.node(node).cancel(session_id)
        self._wake[node].set()
        await asyncio.sleep(0)
        return ok

    def status(self) -> dict:
        """Aggregated accounting across every node (the protocol's
        ``status`` verb and the load harness' verify surface)."""
        nodes = {name: sched.accounting()
                 for name, sched in self.nodes.items()}
        total = {key: sum(acc[key] for acc in nodes.values())
                 for key in next(iter(nodes.values()))}
        summary = self.queue_wait_hist.summary()
        return {"nodes": nodes, "total": total,
                "queue_wait": summary}
