"""JSON-lines wire protocol for likwid-server.

One request object per line, one response object per line, over a
plain TCP stream — the simplest protocol that still exercises real
concurrency (many sockets multiplexed onto one asyncio loop).  Every
response carries ``"ok"``; failures carry ``"error"`` plus a stable
machine-readable ``"code"`` and a ``"retryable"`` flag, and never
tear down the connection (a client's bad submission must not disturb
its other in-flight sessions — fuzzed garbage, torn lines and
oversized lines all get an error reply on a live connection).

Verbs:

``ping``
    Liveness probe → ``{"ok": true, "server": "likwid-server"}``.
``status``
    Fleet-wide terminal-state accounting + queue-wait summary.
``submit``
    One :class:`~repro.server.scheduler.SessionRequest` (fields
    inline).  With ``"wait": true`` (default) the response is the
    terminal session document; with ``false`` it returns the session
    id immediately for a later ``wait``.
``wait``
    Block until session ``{"node", "session"}`` is terminal.
``cancel``
    Cancel a queued or running session.
``ingest``
    A serialized agent :class:`~repro.agent.batch.SampleBatch` for
    the server-side aggregator (the ``likwid-agent --server`` path).

**Idempotency.**  ``submit``, ``cancel`` and ``ingest`` may carry
``"client"`` (a client-chosen id) and ``"seq"`` (a per-client
sequence number).  The pair is the request's idempotency key: the
server remembers, in a bounded window, what each key resolved to, so
a client that lost a reply can retry the same request and land on the
*same* outcome — a retried ``submit`` returns the already-admitted
session instead of running it twice, a retried ``ingest`` never
double-counts into the aggregator.  A key reused for a *different*
request body is an ``idempotency-conflict`` error.

**Crash safety.**  Given a :class:`~repro.server.wal.ServerWal`, the
protocol journals every submission's intent before acting on it;
:func:`recover_protocol` rebuilds a server from the log after a
SIGKILL (see the wal module docstring for the replay taxonomy).
"""

from __future__ import annotations

import asyncio
import json
import zlib
from collections import OrderedDict

from repro import trace as _trace
from repro.agent.aggregate import Aggregator
from repro.agent.fleet import NodeSpec
from repro.errors import ReproError, ServerError
from repro.server.ingest import batch_from_dict
# Re-exported for backwards compatibility: these lived here before
# the scheduler needed them for crash recovery.
from repro.server.scheduler import (REQUEST_FIELDS, NodeResidue,
                                    request_from_dict, request_to_dict)
from repro.server.server import ReproServer, SessionHandle
from repro.server.wal import ServerWal

__all__ = ["ProtocolServer", "recover_protocol", "REQUEST_FIELDS",
           "request_from_dict", "request_to_dict", "idempotency_key",
           "request_fingerprint"]


def idempotency_key(doc: dict) -> str | None:
    """The request's idempotency key, or None when the client did not
    opt in (both ``client`` and ``seq`` are required)."""
    client = doc.get("client")
    seq = doc.get("seq")
    if client is None or seq is None:
        return None
    return f"{client}:{seq}"


def request_fingerprint(doc: dict) -> int:
    """CRC32 over the canonical JSON of the request fields — the
    conflict detector for idempotency-key reuse.  Computed over the
    *normalized* round-trip so wire-level representation differences
    (list vs tuple, omitted defaults) never alias a conflict."""
    return _canonical_fp(request_to_dict(request_from_dict(doc)))


def _canonical_fp(fields: dict) -> int:
    blob = json.dumps(fields, sort_keys=True,
                      separators=(",", ":")).encode()
    return zlib.crc32(blob)


class ProtocolServer:
    """Serve the JSON-lines protocol over TCP for one ReproServer.

    ``dedup_window`` bounds the idempotency memory (keys beyond it
    fall out oldest-first; a retry storm that outlives the window is
    a client misconfiguration, not a server leak)."""

    def __init__(self, server: ReproServer, *,
                 aggregator: Aggregator | None = None,
                 wal: ServerWal | None = None,
                 dedup_window: int = 4096):
        self.server = server
        self.aggregator = aggregator if aggregator is not None \
            else Aggregator()
        self.wal = wal if wal is not None else server.wal
        if self.wal is not None and server.wal is None:
            server.wal = self.wal
        self.dedup_window = dedup_window
        self.ingested = 0
        self.dedup_hits = 0
        #: key -> {"event": Event, "fp": int}            (in flight)
        #:     -> {"node": str, "session": int, "fp": int} (resolved)
        self._dedup: "OrderedDict[str, dict]" = OrderedDict()
        #: ingest key -> accepted count (replayed on retry).
        self._ingest_seen: "OrderedDict[str, int]" = OrderedDict()
        self._tcp: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- idempotency window ----------------------------------------------------

    def _dedup_put(self, key: str, entry: dict) -> None:
        self._dedup[key] = entry
        self._dedup.move_to_end(key)
        while len(self._dedup) > self.dedup_window:
            # Never evict an in-flight entry: concurrent retries are
            # parked on its event and must observe the resolution.
            for old_key, old in self._dedup.items():
                if "event" not in old:
                    del self._dedup[old_key]
                    break
            else:
                break

    def _ingest_put(self, key: str, accepted: int) -> None:
        self._ingest_seen[key] = accepted
        self._ingest_seen.move_to_end(key)
        while len(self._ingest_seen) > self.dedup_window:
            self._ingest_seen.popitem(last=False)

    async def _dedup_lookup(self, key: str, fp: int) -> dict | None:
        """Resolve *key* against the window; returns the resolved
        entry, or None when the key is unseen.  Parks on in-flight
        entries (the concurrent-retry race: the original submit has
        not finished admitting yet)."""
        while True:
            entry = self._dedup.get(key)
            if entry is None:
                return None
            if entry["fp"] != fp:
                raise ServerError(
                    f"idempotency key {key!r} reused for a different "
                    f"request", code="idempotency-conflict")
            if "event" not in entry:
                self._dedup.move_to_end(key)
                return entry
            await entry["event"].wait()

    # -- dispatch --------------------------------------------------------------

    async def dispatch(self, doc: dict) -> dict:
        if self._draining:
            raise ServerError("server is shutting down",
                              code="shutting-down", retryable=True)
        op = doc.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ServerError(f"unknown op {op!r}", code="unknown-op")
        return await handler(doc)

    async def _op_ping(self, doc: dict) -> dict:
        return {"ok": True, "server": "likwid-server",
                "nodes": sorted(self.server.nodes)}

    async def _op_status(self, doc: dict) -> dict:
        status = self.server.status()
        status["ok"] = True
        status["ingested"] = self.ingested
        status["dedup_hits"] = self.dedup_hits
        return status

    async def _session_reply(self, node: str, session_id: int,
                             wait: bool) -> dict:
        """The reply for a (possibly deduplicated) submission."""
        handle = self.server._handles.get((node, session_id))
        if handle is None:
            sched = self.server.node(node)
            session = sched.sessions.get(session_id)
            if session is None:
                raise ServerError(
                    f"unknown session {session_id} on {node}",
                    code="unknown-session")
            reply = session.as_dict()
        elif wait:
            session = await handle.wait()
            reply = session.as_dict()
        else:
            reply = {"session": handle.id, "node": node,
                     "state": handle.state.value}
        reply["ok"] = True
        return reply

    async def _op_submit(self, doc: dict) -> dict:
        wait = doc.get("wait", True)
        key = idempotency_key(doc)
        req = request_from_dict(doc)
        if key is None:
            # No idempotency opt-in: PR 9 behaviour, execute as-is.
            handle = await self._admit(None, req)
            return await self._session_reply(req.node, handle.id, wait)
        fp = _canonical_fp(request_to_dict(req))
        entry = await self._dedup_lookup(key, fp)
        if entry is not None:
            self.dedup_hits += 1
            _trace.incr("server.dedup_hits")
            reply = await self._session_reply(entry["node"],
                                              entry["session"], wait)
            reply["deduplicated"] = True
            return reply
        pending = {"event": asyncio.Event(), "fp": fp}
        self._dedup_put(key, pending)
        try:
            handle = await self._admit(key, req)
        except BaseException:
            # Deterministic failure (bad node, bad request): retries
            # re-execute and fail identically; nothing to memoize.
            del self._dedup[key]
            raise
        finally:
            pending["event"].set()
        self._dedup_put(key, {"node": req.node, "session": handle.id,
                              "fp": fp})
        return await self._session_reply(req.node, handle.id, wait)

    async def _admit(self, key: str | None, req) -> SessionHandle:
        """Journal the intent, then admit (write-ahead ordering: an
        intent with no admit record means the crash hit before the
        scheduler created a session — safe to resubmit fresh).  The
        ADMIT record is written *inside* :meth:`ReproServer.submit`,
        atomically with session creation: this handler task can be
        cancelled by a crash at any await point, and the node loop may
        even run the session to terminal before we resume — an admit
        written here, after the await, could be lost while the session
        it names already executed."""
        intent = None
        if self.wal is not None:
            intent = self.wal.record_intent(key, request_to_dict(req))
        return await self.server.submit(req, intent=intent)

    async def _op_wait(self, doc: dict) -> dict:
        return await self._session_reply(doc.get("node"),
                                         doc.get("session"), True)

    async def _op_cancel(self, doc: dict) -> dict:
        ok = await self.server.cancel(doc.get("node"),
                                      doc.get("session"))
        return {"ok": True, "cancelled": ok}

    async def _op_ingest(self, doc: dict) -> dict:
        key = idempotency_key(doc)
        if key is not None and key in self._ingest_seen:
            self.dedup_hits += 1
            _trace.incr("server.dedup_hits")
            return {"ok": True, "accepted": self._ingest_seen[key],
                    "deduplicated": True}
        batch = batch_from_dict(doc.get("batch") or {})
        # No awaits between decode and aggregate: the ingest path is
        # atomic per event-loop turn, so unlike submit it needs no
        # in-flight dedup entry.
        self.aggregator.ingest(batch)
        self.ingested += len(batch)
        if self.wal is not None:
            self.wal.record_ingest(key, len(batch))
        if key is not None:
            self._ingest_put(key, len(batch))
        return {"ok": True, "accepted": len(batch)}

    # -- transport -------------------------------------------------------------

    @staticmethod
    def _error_reply(exc: BaseException) -> dict:
        if isinstance(exc, ServerError):
            return {"ok": False, "error": str(exc), "code": exc.code,
                    "retryable": exc.retryable}
        if isinstance(exc, ReproError):
            return {"ok": False, "error": str(exc),
                    "code": "server-error", "retryable": False}
        return {"ok": False, "error": f"bad request line: {exc}",
                "code": "bad-json", "retryable": False}

    @staticmethod
    async def _read_request_line(reader: asyncio.StreamReader
                                 ) -> bytes | None:
        """One request line; None at EOF (including EOF mid-line — a
        torn request has no one to reply to).  A line exceeding the
        stream limit is drained to its newline and reported, so the
        connection survives oversized garbage."""
        try:
            line = await reader.readline()
        except ValueError:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk or b"\n" in chunk:
                    break
            raise ServerError("request line too long",
                              code="oversized-request") from None
        if not line or not line.endswith(b"\n"):
            return None
        return line

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conns.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await self._read_request_line(reader)
                except ServerError as exc:
                    reply = self._error_reply(exc)
                else:
                    if line is None:
                        break
                    try:
                        doc = json.loads(line)
                        if not isinstance(doc, dict):
                            raise ServerError(
                                "request must be an object",
                                code="bad-request")
                        reply = await self.dispatch(doc)
                    except asyncio.CancelledError:
                        raise
                    except (ReproError, ValueError) as exc:
                        reply = self._error_reply(exc)
                    except Exception as exc:
                        # A handler bug must not take down the
                        # connection, let alone the server task.
                        reply = {"ok": False, "code": "internal",
                                 "retryable": False,
                                 "error": f"internal error: "
                                          f"{type(exc).__name__}: {exc}"}
                try:
                    writer.write(json.dumps(reply, sort_keys=True)
                                 .encode() + b"\n")
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        except asyncio.CancelledError:
            # The server was SIGKILLed (abort()): die quietly, like
            # the process this task models would.
            pass
        finally:
            self._conns.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind the TCP listener; returns the bound (host, port) —
        port 0 picks a free port, the test-friendly default."""
        self.server.start()
        self._draining = False
        self._tcp = await asyncio.start_server(
            self.handle_connection, host, port)
        bound = self._tcp.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        self._draining = True
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        await self.server.close()

    async def abort(self) -> dict[str, NodeResidue]:
        """Simulated SIGKILL: the listener closes, every live client
        connection is severed mid-whatever (transports aborted, no
        FIN handshakes, handler tasks cancelled), and the underlying
        server crashes — returning the per-node hardware residue that
        :func:`recover_protocol` needs."""
        self._draining = True
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for w in list(self._conns):
            transport = w.transport
            if transport is not None:
                transport.abort()
        tasks = list(self._conn_tasks)
        for t in tasks:
            t.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._conns.clear()
        self._conn_tasks.clear()
        return await self.server.crash()

    async def serve_forever(self) -> None:
        if self._tcp is None:
            raise ServerError("start() the listener first")
        await self._tcp.serve_forever()


async def recover_protocol(specs: list[NodeSpec], wal: ServerWal, *,
                           residues: dict[str, NodeResidue] | None = None,
                           lease_limit: float = 1.0,
                           max_queue: int = 64,
                           aggregator: Aggregator | None = None,
                           dedup_window: int = 4096) -> ProtocolServer:
    """Rebuild a protocol server from a crashed incarnation's WAL.

    In order: reconstruct the node schedulers on the surviving
    hardware residue and run per-node :class:`~repro.oskern.recovery
    .RecoveryEngine` recovery (pristine MSR state *before* anything
    executes), then replay the log — adopt terminal documents, fence
    sessions that were running, requeue admitted-but-never-granted
    sessions under their original ids and intended-but-never-admitted
    ones under fresh ids — and finally restore the idempotency
    windows so pre-crash retries still deduplicate.  The caller binds
    the TCP listener (typically on the crashed server's port)."""
    replay = wal.replay()
    server = ReproServer.from_specs(
        specs, lease_limit=lease_limit, max_queue=max_queue,
        wal=wal, residues=residues or {})
    recovered = sum(len(sched.recover())
                    for sched in server.nodes.values())
    if recovered:
        _trace.incr("server.recovery.orphans_fenced", recovered)
    proto = ProtocolServer(server, aggregator=aggregator, wal=wal,
                           dedup_window=dedup_window)
    server.start()
    keys_by_sid = {sid: key for key, sid in replay.dedup.items()}
    for node, sid, doc in replay.terminals:
        if node not in server.nodes:
            continue
        sess = server.nodes[node].adopt_terminal(doc)
        server._handles[(node, sid)] = SessionHandle(sess)
        key = keys_by_sid.get((node, sid))
        if key is not None:
            proto._dedup_put(key, {"node": node, "session": sid,
                                   "fp": request_fingerprint(doc)})
    for node, sid, reqdoc in replay.fenced:
        if node not in server.nodes:
            continue
        sess = server.nodes[node].adopt_fenced(
            reqdoc, sid,
            reason="server crashed mid-session; fenced by recovery")
        server._handles[(node, sid)] = SessionHandle(sess)
        key = keys_by_sid.get((node, sid))
        if key is not None:
            proto._dedup_put(key, {"node": node, "session": sid,
                                   "fp": request_fingerprint(reqdoc)})
    for node, sid, reqdoc, key in replay.requeue_admitted:
        if node not in server.nodes:
            continue
        req = request_from_dict(reqdoc)
        intent = wal.record_intent(key, reqdoc)
        handle = await server.submit(req, session_id=sid, intent=intent)
        if key is not None:
            proto._dedup_put(key, {"node": node, "session": handle.id,
                                   "fp": request_fingerprint(reqdoc)})
    for reqdoc, key in replay.requeue_intended:
        req = request_from_dict(reqdoc)
        if req.node not in server.nodes:
            continue
        intent = wal.record_intent(key, reqdoc)
        handle = await server.submit(req, intent=intent)
        if key is not None:
            proto._dedup_put(key, {"node": req.node,
                                   "session": handle.id,
                                   "fp": request_fingerprint(reqdoc)})
    for key, accepted in replay.ingest:
        proto.ingested += accepted
        if key is not None:
            proto._ingest_put(key, accepted)
    if not replay.empty:
        _trace.incr("server.recovery.restarts")
    return proto
