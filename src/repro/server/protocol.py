"""JSON-lines wire protocol for likwid-server.

One request object per line, one response object per line, over a
plain TCP stream — the simplest protocol that still exercises real
concurrency (many sockets multiplexed onto one asyncio loop).  Every
response carries ``"ok"``; failures carry ``"error"`` and never tear
down the connection (a client's bad submission must not disturb its
other in-flight sessions).

Verbs:

``ping``
    Liveness probe → ``{"ok": true, "server": "likwid-server"}``.
``status``
    Fleet-wide terminal-state accounting + queue-wait summary.
``submit``
    One :class:`~repro.server.scheduler.SessionRequest` (fields
    inline).  With ``"wait": true`` (default) the response is the
    terminal session document; with ``false`` it returns the session
    id immediately for a later ``wait``.
``wait``
    Block until session ``{"node", "session"}`` is terminal.
``cancel``
    Cancel a queued or running session.
``ingest``
    A serialized agent :class:`~repro.agent.batch.SampleBatch` for
    the server-side aggregator (the ``likwid-agent --server`` path).
"""

from __future__ import annotations

import asyncio
import json

from repro.agent.aggregate import Aggregator
from repro.errors import ReproError, ServerError
from repro.server.ingest import batch_from_dict
from repro.server.scheduler import SessionRequest
from repro.server.server import ReproServer

#: Protocol fields of a submit verb, mirroring SessionRequest.
REQUEST_FIELDS = ("node", "cpus", "group", "tenant", "windows",
                  "window", "deadline", "seed")


def request_to_dict(req: SessionRequest) -> dict:
    return {"node": req.node, "cpus": list(req.cpus),
            "group": req.group, "tenant": req.tenant,
            "windows": req.windows, "window": req.window,
            "deadline": req.deadline, "seed": req.seed}


def request_from_dict(doc: dict) -> SessionRequest:
    try:
        node = doc["node"]
        cpus = tuple(int(c) for c in doc["cpus"])
        group = doc["group"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServerError(f"bad submit request: {exc}") from None
    deadline = doc.get("deadline")
    return SessionRequest(
        node=node, cpus=cpus, group=group,
        tenant=str(doc.get("tenant", "default")),
        windows=int(doc.get("windows", 1)),
        window=float(doc.get("window", 0.1)),
        deadline=None if deadline is None else float(deadline),
        seed=int(doc.get("seed", 0)))


class ProtocolServer:
    """Serve the JSON-lines protocol over TCP for one ReproServer."""

    def __init__(self, server: ReproServer, *,
                 aggregator: Aggregator | None = None):
        self.server = server
        self.aggregator = aggregator if aggregator is not None \
            else Aggregator()
        self.ingested = 0
        self._tcp: asyncio.AbstractServer | None = None

    # -- dispatch --------------------------------------------------------------

    async def dispatch(self, doc: dict) -> dict:
        op = doc.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ServerError(f"unknown op {op!r}")
        return await handler(doc)

    async def _op_ping(self, doc: dict) -> dict:
        return {"ok": True, "server": "likwid-server",
                "nodes": sorted(self.server.nodes)}

    async def _op_status(self, doc: dict) -> dict:
        status = self.server.status()
        status["ok"] = True
        status["ingested"] = self.ingested
        return status

    async def _op_submit(self, doc: dict) -> dict:
        req = request_from_dict(doc)
        handle = await self.server.submit(req)
        if doc.get("wait", True):
            session = await handle.wait()
            reply = session.as_dict()
        else:
            reply = {"session": handle.id, "node": req.node,
                     "state": handle.state.value}
        reply["ok"] = True
        return reply

    async def _op_wait(self, doc: dict) -> dict:
        node = doc.get("node")
        session_id = doc.get("session")
        handle = self.server._handles.get((node, session_id))
        if handle is None:
            sched = self.server.node(node)
            session = sched.sessions.get(session_id)
            if session is None:
                raise ServerError(
                    f"unknown session {session_id} on {node}")
            reply = session.as_dict()
            reply["ok"] = True
            return reply
        session = await handle.wait()
        reply = session.as_dict()
        reply["ok"] = True
        return reply

    async def _op_cancel(self, doc: dict) -> dict:
        ok = await self.server.cancel(doc.get("node"),
                                      doc.get("session"))
        return {"ok": True, "cancelled": ok}

    async def _op_ingest(self, doc: dict) -> dict:
        batch = batch_from_dict(doc.get("batch") or {})
        self.aggregator.ingest(batch)
        self.ingested += len(batch)
        return {"ok": True, "accepted": len(batch)}

    # -- transport -------------------------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    doc = json.loads(line)
                    if not isinstance(doc, dict):
                        raise ServerError("request must be an object")
                    reply = await self.dispatch(doc)
                except (ReproError, ValueError) as exc:
                    reply = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(reply, sort_keys=True)
                             .encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind the TCP listener; returns the bound (host, port) —
        port 0 picks a free port, the test-friendly default."""
        self.server.start()
        self._tcp = await asyncio.start_server(
            self.handle_connection, host, port)
        bound = self._tcp.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        await self.server.close()

    async def serve_forever(self) -> None:
        if self._tcp is None:
            raise ServerError("start() the listener first")
        await self._tcp.serve_forever()
