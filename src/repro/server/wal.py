"""Session-intent write-ahead log for the server plane.

PR 5's :class:`~repro.oskern.journal.MsrJournal` makes a *node's*
register state crash-safe; this log makes the *server's* scheduling
state crash-safe.  Before the server acts on a submission it appends
an intent record; every later transition (admitted with a session id,
lease granted, terminal document, ingest accepted) appends its own
record.  After a SIGKILL the replay classifies every session the
crashed incarnation knew about:

* **terminal** — a TERMINAL record exists: adopt the document as-is
  so a post-restart ``wait`` resolves identically.
* **fenced** — GRANT but no TERMINAL: the session was *running* when
  the server died.  Its simulated process is an orphan holding real
  MSR state; recovery fences it (terminal state ``preempted``) after
  the per-node :class:`~repro.oskern.recovery.RecoveryEngine` has
  restored pristine registers.  It is *not* re-run: the server cannot
  know how much of the measurement happened, and a silent re-run is
  exactly the duplicate-execution failure this PR exists to prevent.
* **requeue (admitted)** — ADMIT but no GRANT: the session sat in
  the wait queue; it is resubmitted under its *original* session id
  so client handles stay valid.
* **requeue (intended)** — INTENT but no ADMIT: the crash hit the
  narrow window before admission; resubmitted under a fresh id (no
  client ever learned an id for it).

Record integrity follows the journal's contract exactly: CRC32 per
record, a bad record at the tail is a torn append and is truncated, a
bad record with valid data after it raises
:class:`~repro.errors.JournalCorruptError` (mis-restoring is worse
than not restoring).  Records are variable length (JSON payloads)
behind a fixed length prefix.  In-memory by default — the crash tests
kill the simulated server, not the interpreter — and file-backed for
``likwid-server serve --wal``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro import trace as _trace
from repro.errors import JournalCorruptError, JournalError

#: File header: magic + format version (little-endian u16) + padding.
MAGIC = b"RWAL"
FORMAT_VERSION = 1
HEADER = MAGIC + struct.pack("<HH", FORMAT_VERSION, 0)

#: Fixed record prefix: seq u32, kind u8, payload length u32.  The
#: JSON payload follows, then CRC32 u32 over prefix + payload.
_PREFIX = struct.Struct("<IBI")
_CRC = struct.Struct("<I")
MAX_PAYLOAD = 1 << 20

K_INTENT = 1     # {"intent", "key", "req"} — about to submit
K_ADMIT = 2      # {"intent", "node", "session"} — scheduler admitted
K_GRANT = 3      # {"node", "session"} — lease granted, windows running
K_TERMINAL = 4   # {"node", "doc"} — full terminal session document
K_INGEST = 5     # {"key", "accepted"} — aggregator accepted a batch

_KIND_NAMES = {K_INTENT: "intent", K_ADMIT: "admit", K_GRANT: "grant",
               K_TERMINAL: "terminal", K_INGEST: "ingest"}


@dataclass(frozen=True)
class WalRecord:
    """One log entry: a kind tag plus its JSON document."""

    seq: int
    kind: int
    doc: dict

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"kind{self.kind}")

    def encode(self) -> bytes:
        payload = json.dumps(self.doc, sort_keys=True,
                             separators=(",", ":")).encode()
        prefix = _PREFIX.pack(self.seq, self.kind, len(payload))
        return prefix + payload + _CRC.pack(zlib.crc32(prefix + payload))


def _decode_at(body: bytes, offset: int) -> tuple["WalRecord", int]:
    """Decode the record at *offset*; raises :class:`JournalError` on
    truncation or checksum failure (the caller decides torn vs
    corrupt) and returns (record, next offset)."""
    if offset + _PREFIX.size > len(body):
        raise JournalError("short wal record prefix")
    seq, kind, length = _PREFIX.unpack_from(body, offset)
    if length > MAX_PAYLOAD:
        raise JournalError(f"wal payload length {length} exceeds "
                           f"{MAX_PAYLOAD}")
    end = offset + _PREFIX.size + length + _CRC.size
    if end > len(body):
        raise JournalError("short wal record payload")
    blob = body[offset:end - _CRC.size]
    crc = _CRC.unpack_from(body, end - _CRC.size)[0]
    if zlib.crc32(blob) != crc:
        raise JournalError("wal record checksum mismatch")
    try:
        doc = json.loads(blob[_PREFIX.size:])
    except ValueError:
        raise JournalError("wal record payload is not JSON") from None
    return WalRecord(seq, kind, doc), end


@dataclass
class WalScan:
    """Result of validating a log image."""

    records: list[WalRecord]
    torn_bytes: int = 0

    @property
    def empty(self) -> bool:
        return not self.records


@dataclass
class WalReplay:
    """The crash-recovery classification (see the module docstring).

    ``dedup`` maps idempotency keys to their outcome so the protocol
    layer can restore its dedup window: a retried ``submit`` arriving
    after the restart still lands on the pre-crash session."""

    terminals: list[tuple[str, int, dict]] = field(default_factory=list)
    fenced: list[tuple[str, int, dict]] = field(default_factory=list)
    requeue_admitted: list[tuple[str, int, dict, str | None]] = \
        field(default_factory=list)
    requeue_intended: list[tuple[dict, str | None]] = \
        field(default_factory=list)
    ingest: list[tuple[str | None, int]] = field(default_factory=list)
    dedup: dict[str, tuple[str, int]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.terminals or self.fenced
                    or self.requeue_admitted or self.requeue_intended
                    or self.ingest)


class ServerWal:
    """The append-only session-intent log itself."""

    def __init__(self, path: str | os.PathLike | None = None):
        self.path = os.fspath(path) if path is not None else None
        self.buffer = bytearray()
        self._seq = 0
        self._intent = 0
        if self.path is not None and os.path.exists(self.path):
            with open(self.path, "rb") as fh:
                self.buffer = bytearray(fh.read())
        if self.buffer:
            self._check_header()
            scan = self.scan()
            if scan.records:
                self._seq = scan.records[-1].seq + 1
                self._intent = max(
                    (r.doc.get("intent", 0) for r in scan.records
                     if r.kind in (K_INTENT, K_ADMIT)), default=0)

    # -- low-level image handling ---------------------------------------------

    def _check_header(self) -> None:
        if len(self.buffer) < len(HEADER) or \
                bytes(self.buffer[:len(MAGIC)]) != MAGIC:
            raise JournalCorruptError(
                f"not a server wal: bad magic in "
                f"{self.path or '<memory>'!s}")
        version = struct.unpack_from("<H", self.buffer, len(MAGIC))[0]
        if version != FORMAT_VERSION:
            raise JournalError(
                f"server wal format v{version} not supported "
                f"(this build writes v{FORMAT_VERSION})")

    def _flush(self, data: bytes) -> None:
        if self.path is None:
            return
        mode = "ab" if os.path.exists(self.path) else "wb"
        with open(self.path, mode) as fh:
            if mode == "wb":
                fh.write(bytes(self.buffer[:-len(data)]))
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())

    def _append(self, kind: int, doc: dict) -> None:
        if not self.buffer:
            self.buffer += HEADER
            self._flush(HEADER)
        blob = WalRecord(self._seq, kind, doc).encode()
        self.buffer += blob
        self._flush(blob)
        self._seq += 1
        _trace.incr("server.wal.records")

    # -- appends ---------------------------------------------------------------

    def record_intent(self, key: str | None, req: dict) -> int:
        """Log the intent to submit *req*; returns the intent id that
        ties the later ADMIT record back to this request.  Intent ids
        are unique across server incarnations (the constructor resumes
        the counter past everything already in the log)."""
        self._intent += 1
        self._append(K_INTENT,
                     {"intent": self._intent, "key": key, "req": req})
        return self._intent

    def record_admit(self, intent: int, node: str, session: int) -> None:
        self._append(K_ADMIT,
                     {"intent": intent, "node": node, "session": session})

    def record_grant(self, node: str, session: int) -> None:
        self._append(K_GRANT, {"node": node, "session": session})

    def record_terminal(self, node: str, doc: dict) -> None:
        self._append(K_TERMINAL, {"node": node, "doc": doc})

    def record_ingest(self, key: str | None, accepted: int) -> None:
        self._append(K_INGEST, {"key": key, "accepted": accepted})

    # -- scanning and replay ---------------------------------------------------

    def scan(self) -> WalScan:
        """Validate the log image record by record; torn tail is
        truncated, earlier damage raises
        :class:`~repro.errors.JournalCorruptError`."""
        if not self.buffer:
            return WalScan([])
        self._check_header()
        body = bytes(self.buffer[len(HEADER):])
        records: list[WalRecord] = []
        offset = 0
        while offset < len(body):
            try:
                record, end = _decode_at(body, offset)
            except JournalError:
                # Is there a *valid* record after the damage?  For
                # variable-length records the only honest probe is to
                # rescan from every later prefix-aligned offset; a
                # torn tail never yields one, mid-log damage does.
                for probe in range(offset + 1,
                                   len(body) - _PREFIX.size - _CRC.size):
                    try:
                        _decode_at(body, probe)
                    except JournalError:
                        continue
                    raise JournalCorruptError(
                        f"server wal record at byte "
                        f"{len(HEADER) + offset} is corrupt but later "
                        f"records follow; history is unrecoverable") \
                        from None
                torn = len(body) - offset
                del self.buffer[len(HEADER) + offset:]
                self._rewrite()
                _trace.incr("server.wal.torn_records_truncated")
                return WalScan(records, torn_bytes=torn)
            records.append(record)
            offset = end
        return WalScan(records)

    def replay(self) -> WalReplay:
        """Scan and classify (the recovery entry point)."""
        scan = self.scan()
        intents: dict[int, tuple[str | None, dict]] = {}
        admits: dict[tuple[str, int], int] = {}
        admitted_intents: set[int] = set()
        grants: set[tuple[str, int]] = set()
        terminals: dict[tuple[str, int], dict] = {}
        order: list[tuple[str, int]] = []
        replay = WalReplay()
        for r in scan.records:
            if r.kind == K_INTENT:
                intents[r.doc["intent"]] = (r.doc.get("key"),
                                            r.doc["req"])
            elif r.kind == K_ADMIT:
                sid = (r.doc["node"], r.doc["session"])
                admits[sid] = r.doc["intent"]
                admitted_intents.add(r.doc["intent"])
                if sid not in terminals:
                    order.append(sid)
            elif r.kind == K_GRANT:
                grants.add((r.doc["node"], r.doc["session"]))
            elif r.kind == K_TERMINAL:
                doc = r.doc["doc"]
                terminals[(r.doc["node"], doc["session"])] = doc
            elif r.kind == K_INGEST:
                replay.ingest.append((r.doc.get("key"),
                                      r.doc["accepted"]))
        seen: set[tuple[str, int]] = set()
        for sid in order:
            if sid in seen:
                continue
            seen.add(sid)
            node, session = sid
            intent = admits[sid]
            key, req = intents.get(intent, (None, None))
            if sid in terminals:
                replay.terminals.append((node, session, terminals[sid]))
            elif sid in grants:
                replay.fenced.append((node, session,
                                      req if req is not None else {}))
            else:
                replay.requeue_admitted.append((node, session,
                                                req if req is not None
                                                else {}, key))
            if key is not None:
                replay.dedup[key] = sid
        for sid, doc in terminals.items():
            # A terminal adopted from a log that lost its ADMIT (e.g.
            # multi-incarnation append order) still must be adopted.
            if sid not in seen:
                seen.add(sid)
                replay.terminals.append((sid[0], sid[1], doc))
        for intent, (key, req) in intents.items():
            if intent not in admitted_intents:
                replay.requeue_intended.append((req, key))
        return replay

    def clear(self) -> None:
        """Retire the log (every session it covers is terminal)."""
        self.buffer.clear()
        self._seq = 0
        self._intent = 0
        if self.path is not None and os.path.exists(self.path):
            os.unlink(self.path)

    def _rewrite(self) -> None:
        if self.path is not None:
            with open(self.path, "wb") as fh:
                fh.write(bytes(self.buffer))
                fh.flush()
                os.fsync(fh.fileno())

    @property
    def record_count(self) -> int:
        return sum(1 for _ in self.scan().records) if self.buffer else 0
