"""Seeded-jitter exponential backoff for the server clients.

The PR 3 msr retry loop (`repro.perfctr.retry_msr_read`) absorbs
transient EAGAIN faults with bounded backoff; this module is the same
contract lifted to the network plane and shared by both the asyncio
and the blocking client: a frozen :class:`RetryPolicy` computes the
sleep before attempt *n*, and :func:`retryable` classifies an
exception as worth repeating.

Backoff is exponential with a cap and *seeded* multiplicative jitter:
each client derives one ``random.Random`` from its client id, so a
retry storm across many clients decorrelates (no thundering herd
against a restarting server) while any single client's schedule is
exactly reproducible — the chaos acceptance runs depend on that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ServerError

#: Exceptions that always indicate a transport-level failure the
#: client may retry against a fresh connection.  ``TimeoutError``
#: covers both socket timeouts and ``asyncio.wait_for`` expiry on a
#: single attempt (the per-*call* deadline is enforced separately).
TRANSPORT_ERRORS = (ConnectionError, OSError, EOFError, TimeoutError)


def retryable(exc: BaseException) -> bool:
    """Whether repeating the request against a (re)connected server
    can plausibly succeed.

    * :class:`ServerError` carries its own ``retryable`` flag — the
      server decided (``shutting-down`` yes, ``unknown-node`` no).
    * Transport errors (reset, refused, EOF, timeout) are always
      retryable: the reply was simply never observed.
    """
    if isinstance(exc, ServerError):
        return exc.retryable
    return isinstance(exc, TRANSPORT_ERRORS)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``max_attempts`` counts the first try: the default of 6 means one
    initial attempt plus up to five retries.  Delays follow
    ``min(cap, base * 2**retry) * (1 + jitter * U[0,1))`` — the same
    shape as the msr retry loop, scaled to loopback latencies."""

    max_attempts: int = 6
    backoff_base: float = 0.0005
    backoff_cap: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0.0 or self.backoff_cap < 0.0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, retry: int, rng: random.Random) -> float:
        """Seconds to sleep before retry number *retry* (0-based)."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** retry))
        return base * (1.0 + self.jitter * rng.random())


#: Retries disabled: a single attempt, no backoff.  Used by the
#: retry-overhead benchmark's raw path and available to callers that
#: want PR 9's fail-fast behaviour back.
NO_RETRY = RetryPolicy(max_attempts=1)
