"""The per-node session scheduler: socket leases as a wait queue.

Standalone likwid-perfctr resolves uncore contention first-come: the
second session hitting a held socket lock gets a
:class:`~repro.errors.SocketLockError` and degrades to NaN.  The
server turns that into *scheduling*: a session submission claims the
sockets its CPU set spans; busy sockets queue the request on a
deficit-fair, aging-aware wait queue
(:class:`~repro.oskern.locks.FairWaitQueue`); deadline expiry fires
while queued; and a granted lease that outlives its limit is
**preempted** through the PR 5 crash machinery — the session's
simulated process is killed, its write-ahead journal replayed
backwards to pristine MSR state, its stale socket locks reclaimed —
so the next waiter starts from clean hardware.

Time is *virtual*: the node clock advances by exactly the measured
window durations, so queue waits, deadlines and lease ages are
deterministic, replayable, and independent of host load.  Each
granted session runs its measurement windows atomically (the
simulated window is a synchronous call), one window per scheduler
step, with active sessions on disjoint sockets interleaving
round-robin — kernel-arbitration behavior in the sense of Becker's
"Measuring Software Performance on Linux", modeled at tool level.

The scheduler core is synchronous and single-threaded; the asyncio
layer (:mod:`repro.server.server`) drives ``step()`` from per-node
tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import trace as _trace
from repro.agent.scheduler import SyntheticLoad
from repro.core.perfctr.counters import RetryPolicy
from repro.core.perfctr.groups import groups_for
from repro.core.perfctr.measurement import (LikwidPerfCtr,
                                            MeasurementResult,
                                            SessionLease)
from repro.errors import ReproError, ServerError
from repro.hw.arch import create_machine
from repro.oskern.access import open_backend
from repro.oskern.locks import FairWaitQueue, SocketLockTable
from repro.oskern.msr_driver import FaultPlan
from repro.oskern.proc import SimProcessTable
from repro.oskern.recovery import RecoveryEngine, RecoveryReport
from repro.trace.metrics import Histogram

#: Backoff-free retries: the server absorbs injected transient faults
#: across hundreds of sessions; real sleeps would only slow the
#: simulation (same policy as the agent's fleet soak).
SERVER_RETRIES = RetryPolicy(max_attempts=8, backoff_base=0.0,
                             backoff_cap=0.0)


class SessionState(Enum):
    """Terminal accounting states (plus the two live ones).

    Every submitted session must end in exactly one of the terminal
    states — the load harness' ``--verify`` reconciles
    ``completed + timed_out + rejected + preempted (+ cancelled +
    failed) == submitted`` and requires ``failed == 0``."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMED_OUT = "timed-out"
    REJECTED = "rejected"
    PREEMPTED = "preempted"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self not in (SessionState.QUEUED, SessionState.RUNNING)


@dataclass(frozen=True)
class SessionRequest:
    """One client's measurement submission."""

    node: str
    cpus: tuple[int, ...]
    group: str
    tenant: str = "default"
    windows: int = 1              # measurement windows under one lease
    window: float = 0.1           # virtual seconds per window
    deadline: float | None = None  # max queue wait (virtual seconds)
    seed: int = 0                 # workload seed (bit-identity key)


#: Protocol fields of a submit verb, mirroring SessionRequest.
REQUEST_FIELDS = ("node", "cpus", "group", "tenant", "windows",
                  "window", "deadline", "seed")


def request_to_dict(req: SessionRequest) -> dict:
    return {"node": req.node, "cpus": list(req.cpus),
            "group": req.group, "tenant": req.tenant,
            "windows": req.windows, "window": req.window,
            "deadline": req.deadline, "seed": req.seed}


def request_from_dict(doc: dict) -> SessionRequest:
    try:
        node = doc["node"]
        cpus = tuple(int(c) for c in doc["cpus"])
        group = doc["group"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ServerError(f"bad submit request: {exc}",
                          code="bad-request") from None
    deadline = doc.get("deadline")
    return SessionRequest(
        node=node, cpus=cpus, group=group,
        tenant=str(doc.get("tenant", "default")),
        windows=int(doc.get("windows", 1)),
        window=float(doc.get("window", 0.1)),
        deadline=None if deadline is None else float(deadline),
        seed=int(doc.get("seed", 0)))


@dataclass
class ServerSession:
    """One submission's full server-side record."""

    id: int
    request: SessionRequest
    state: SessionState = SessionState.QUEUED
    reason: str = ""               # rejection/failure detail
    submit_clock: float = 0.0
    grant_clock: float | None = None
    end_clock: float | None = None
    windows_run: int = 0
    run_time: float = 0.0          # this session's own window time
    result: MeasurementResult | None = None
    # live measurement plumbing (populated while RUNNING)
    sockets: tuple[int, ...] = ()
    driver: object = None
    backend: object = None
    psession: object = None
    workload: object = None
    epoch: int | None = None
    waiter: object = None

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def queue_wait(self) -> float | None:
        """Virtual seconds spent waiting for the socket lease (for a
        timed-out session: the full wait until expiry)."""
        if self.grant_clock is not None:
            return self.grant_clock - self.submit_clock
        if self.end_clock is not None:
            return self.end_clock - self.submit_clock
        return None

    @property
    def held(self) -> float:
        """Virtual seconds the lease has been held so far."""
        if self.grant_clock is None:
            return 0.0
        end = self.end_clock
        return (end if end is not None else self._now) - self.grant_clock

    _now: float = 0.0              # scheduler-maintained clock mirror
    #: Terminal document adopted verbatim from a pre-crash WAL record;
    #: when set it IS this session's wire representation, so a
    #: post-restart ``wait`` resolves bit-identically.
    restored_doc: dict | None = None

    def as_dict(self) -> dict:
        if self.restored_doc is not None:
            return dict(self.restored_doc)
        doc = {
            "session": self.id,
            "node": self.request.node,
            "tenant": self.tenant,
            "group": self.request.group,
            "cpus": list(self.request.cpus),
            "windows": self.request.windows,
            "window": self.request.window,
            "deadline": self.request.deadline,
            "seed": self.request.seed,
            "state": self.state.value,
            "windows_run": self.windows_run,
            "queue_wait": self.queue_wait,
        }
        if self.reason:
            doc["reason"] = self.reason
        if self.result is not None:
            doc["result"] = {
                "wall_time": self.result.wall_time,
                "counts": {str(cpu): dict(events)
                           for cpu, events in self.result.counts.items()},
                "metrics": {str(cpu): dict(m)
                            for cpu, m in self.result.metrics.items()},
                "warnings": list(self.result.warnings),
                "io_retries": self.result.io_retries,
            }
        return doc


@dataclass
class NodeResidue:
    """What a server crash leaves behind on one node.

    The *server process* dies; the simulated hardware does not.  The
    machine's register files, the process table, the socket-lock
    table and the orphaned (terminated) session drivers all survive —
    exactly like real MSR state survives a likwid-perfctr SIGKILL —
    and the next server incarnation must recover them before it runs
    anything, or every post-restart measurement starts dirty."""

    machine: object
    procs: SimProcessTable
    locks: SocketLockTable
    orphans: list            # terminated drivers of mid-run sessions


class NodeScheduler:
    """One node's lease scheduler and session executor.

    ``lease_limit`` is the maximum virtual time a granted lease may
    hold its sockets before preemption; ``max_queue`` bounds the wait
    queue (admission control — excess submissions are rejected, never
    silently dropped); ``age_limit`` is the wait-queue's bounded-
    bypass threshold.  ``residue`` rebuilds the scheduler on the
    surviving hardware of a crashed incarnation (see
    :class:`NodeResidue`); call :meth:`recover` before submitting."""

    def __init__(self, name: str, arch: str = "westmere_ep", *,
                 access_mode: str = "msr", faults: str | None = None,
                 lease_limit: float = 1.0, max_queue: int = 64,
                 age_limit: float | None = None,
                 queue_wait_hist: Histogram | None = None,
                 on_terminal=None, on_grant=None,
                 residue: NodeResidue | None = None):
        self.name = name
        self.arch = arch
        self.access_mode = access_mode
        self.faults_spec = faults
        if residue is not None:
            self.machine = residue.machine
            self.procs = residue.procs
            self.locks = residue.locks
            self._orphans = list(residue.orphans)
        else:
            self.machine = create_machine(arch)
            self.procs = SimProcessTable()
            self.locks = SocketLockTable(self.procs)
            self._orphans = []
        self.lease_limit = lease_limit
        self.max_queue = max_queue
        self.queue = FairWaitQueue(
            age_limit=age_limit if age_limit is not None
            else 4.0 * lease_limit)
        self.clock = 0.0
        self.busy: dict[int, ServerSession] = {}
        self.active: list[ServerSession] = []
        self.sessions: dict[int, ServerSession] = {}
        self.counts: dict[SessionState, int] = {s: 0 for s in SessionState}
        self.submitted = 0
        self.queue_wait_hist = queue_wait_hist if queue_wait_hist \
            is not None else Histogram("server.queue_wait.s")
        self.on_terminal = on_terminal
        self.on_grant = on_grant
        self._next_id = 0
        self._rr = 0                   # round-robin cursor over active
        self._provided = groups_for(self.machine.spec)

    # -- crash / recovery ------------------------------------------------------

    def crash(self) -> NodeResidue:
        """Simulated server SIGKILL: every running session's process
        dies mid-operation with no teardown (the PR 5 crash model),
        and the node's hardware state is handed over as residue for
        the next incarnation.  The scheduler object is dead after
        this — queued sessions are *not* drained; the WAL knows about
        them."""
        orphans = []
        for sess in list(self.active):
            sess.driver.terminate()
            orphans.append(sess.driver)
        return NodeResidue(self.machine, self.procs, self.locks,
                           orphans)

    def recover(self) -> list[RecoveryReport]:
        """Fence the residue's orphaned drivers: respawn each dead
        process and replay its write-ahead journal backwards to
        bit-identical pristine MSR state (reclaiming its stale socket
        locks).  Must run before any new grant — requeued sessions'
        bit-identity depends on starting from clean registers."""
        reports = []
        for driver in self._orphans:
            driver.respawn()
            reports.append(RecoveryEngine(driver).recover())
        self._orphans.clear()
        return reports

    def adopt_terminal(self, doc: dict) -> ServerSession:
        """Re-register a pre-crash terminal session from its WAL
        document, counted in the accounting but *not* re-announced
        through ``on_terminal`` (its terminal record is already in
        the log)."""
        sid = int(doc["session"])
        state = SessionState(doc["state"])
        sess = ServerSession(sid, request_from_dict(doc))
        sess.state = state
        sess.reason = doc.get("reason", "")
        sess.windows_run = int(doc.get("windows_run", 0))
        sess.restored_doc = doc
        self.sessions[sid] = sess
        self.submitted += 1
        self.counts[state] += 1
        self._next_id = max(self._next_id, sid)
        return sess

    def adopt_fenced(self, reqdoc: dict, session_id: int,
                     *, reason: str) -> ServerSession:
        """Terminate a session that was *running* when the server
        died: its registers were recovered by :meth:`recover`, but
        the measurement itself is unaccountable, so it ends PREEMPTED
        (never silently re-run).  Goes through ``_finish`` so the new
        incarnation's WAL and handles both see the terminal."""
        self._next_id = max(self._next_id, session_id)
        sess = ServerSession(session_id, request_from_dict(reqdoc),
                             submit_clock=self.clock)
        sess._now = self.clock
        self.sessions[session_id] = sess
        self.submitted += 1
        self._finish(sess, SessionState.PREEMPTED, reason=reason)
        return sess

    # -- admission -------------------------------------------------------------

    def _sockets_of(self, cpus: tuple[int, ...]) -> tuple[int, ...]:
        spec = self.machine.spec
        return tuple(sorted({spec.socket_of(cpu) for cpu in cpus}))

    def _validate(self, req: SessionRequest) -> str | None:
        if not req.cpus:
            return "empty cpu set"
        if len(set(req.cpus)) != len(req.cpus):
            return f"duplicate cpus in {req.cpus}"
        if max(req.cpus) >= self.machine.num_hwthreads or min(req.cpus) < 0:
            return (f"cpu set {req.cpus} outside 0-"
                    f"{self.machine.num_hwthreads - 1} on {self.arch}")
        if req.group not in self._provided:
            return (f"group {req.group!r} not provided by {self.arch} "
                    f"(available: {', '.join(sorted(self._provided))})")
        if req.windows < 1:
            return "need at least one measurement window"
        if req.window <= 0:
            return "window duration must be positive"
        return None

    def submit(self, req: SessionRequest, *,
               session_id: int | None = None) -> ServerSession:
        """Admit a submission: reject, grant immediately, or queue.

        ``session_id`` re-admits a pre-crash submission under its
        original id (crash recovery's requeue path), so the handle a
        client obtained before the restart still names the session;
        fresh ids always allocate past every adopted one."""
        if session_id is None:
            self._next_id += 1
            session_id = self._next_id
        else:
            if session_id in self.sessions:
                raise ServerError(
                    f"session {session_id} already exists on "
                    f"{self.name}", code="bad-request")
            self._next_id = max(self._next_id, session_id)
        sess = ServerSession(session_id, req, submit_clock=self.clock)
        sess._now = self.clock
        self.sessions[sess.id] = sess
        self.submitted += 1
        problem = self._validate(req)
        if problem is None and len(self.queue) >= self.max_queue:
            problem = f"queue full ({self.max_queue} waiting)"
        if problem is not None:
            self._finish(sess, SessionState.REJECTED, reason=problem)
            return sess
        sess.sockets = self._sockets_of(req.cpus)
        sess.waiter = self.queue.enqueue(
            sess.sockets, tenant=req.tenant, now=self.clock,
            deadline=req.deadline, payload=sess)
        if _trace.TRACER.enabled:
            _trace.incr("server.sessions.submitted")
        self._pump()
        return sess

    def cancel(self, session_id: int) -> bool:
        """Client cancellation: a queued session leaves the queue; a
        running one is torn down through the preemption path (journal
        replay to pristine).  Terminal sessions are left alone."""
        sess = self.sessions.get(session_id)
        if sess is None:
            raise ServerError(f"unknown session {session_id}",
                              code="unknown-session")
        if sess.state is SessionState.QUEUED:
            self.queue.cancel(sess.waiter)
            self._finish(sess, SessionState.CANCELLED,
                         reason="cancelled while queued")
            return True
        if sess.state is SessionState.RUNNING:
            self._evict(sess, SessionState.CANCELLED,
                        reason="cancelled while running")
            return True
        return False

    # -- the scheduler loop ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Sessions not yet in a terminal state."""
        return len(self.queue) + len(self.active)

    def step(self) -> bool:
        """One scheduling quantum; returns True if anything happened.

        Order matters and is part of the contract: expire overdue
        waiters first (a deadline that passed while the clock advanced
        must fire before new grants), then grant every runnable
        waiter, then run one window of one active session
        (round-robin)."""
        progressed = self._expire()
        progressed = self._pump() or progressed
        progressed = self._run_quantum() or progressed
        return progressed

    def run_to_idle(self) -> None:
        """Drive the node until no queued or active session remains
        (the synchronous harness entry point; the asyncio layer calls
        ``step`` itself to interleave nodes)."""
        while self.step():
            pass
        if self.pending:
            raise ServerError(
                f"{self.name}: scheduler wedged with {self.pending} "
                f"session(s) pending")

    def _expire(self) -> bool:
        expired = self.queue.expire(self.clock)
        for waiter in expired:
            sess = waiter.payload
            self._finish(sess, SessionState.TIMED_OUT,
                         reason=f"deadline {waiter.deadline}s expired "
                                f"after {self.clock - waiter.enqueued_at:.3g}s"
                                f" queued")
        return bool(expired)

    def _pump(self) -> bool:
        granted = False
        while True:
            waiter = self.queue.grant_next(set(self.busy), self.clock)
            if waiter is None:
                return granted
            self._grant(waiter.payload)
            granted = True

    def _run_quantum(self) -> bool:
        if not self.active:
            return False
        self._rr %= len(self.active)
        sess = self.active[self._rr]
        if sess.held >= self.lease_limit \
                and sess.windows_run < sess.request.windows:
            self._evict(sess, SessionState.PREEMPTED,
                        reason=f"lease limit {self.lease_limit}s exceeded "
                               f"after {sess.windows_run} window(s)")
            return True
        self._run_window(sess)
        if sess.windows_run >= sess.request.windows:
            self._complete(sess)
        else:
            self._rr += 1
        return True

    # -- grant / run / finish --------------------------------------------------

    def _grant(self, sess: ServerSession) -> None:
        req = sess.request
        plan = FaultPlan.from_string(self.faults_spec) \
            if self.faults_spec else None
        backend = open_backend(self.access_mode, self.machine,
                               faults=plan, procs=self.procs,
                               locks=self.locks)
        driver = backend.driver
        epoch = driver.begin_epoch()
        sess.backend = backend
        sess.driver = driver
        sess.epoch = epoch
        lease = SessionLease(epoch=epoch)
        perfctr = LikwidPerfCtr(self.machine, backend=backend,
                                retry_policy=SERVER_RETRIES)
        try:
            psession = perfctr.session(list(req.cpus), req.group,
                                       lease=lease)
            psession.start()
        except ReproError as exc:
            driver.end_epoch(epoch)
            self._finish(sess, SessionState.FAILED,
                         reason=f"session start failed: {exc}")
            return
        sess.psession = psession
        sess.workload = SyntheticLoad(self.machine, list(req.cpus),
                                      seed=req.seed,
                                      sockets=sess.sockets)
        sess.state = SessionState.RUNNING
        sess.grant_clock = self.clock
        sess._now = self.clock
        for socket in sess.sockets:
            self.busy[socket] = sess
        self.active.append(sess)
        self.queue_wait_hist.observe(sess.queue_wait)
        if _trace.TRACER.enabled:
            _trace.incr("server.sessions.granted")
            _trace.observe("server.queue_wait.s", sess.queue_wait)
        if self.on_grant is not None:
            # The grant is durable before any window runs: _grant is
            # synchronous, so the WAL record and the lease commit
            # atomically with respect to the simulated server crash.
            self.on_grant(sess)

    def _run_window(self, sess: ServerSession) -> None:
        req = sess.request
        with _trace.span("server.window", node=self.name,
                         session=sess.id, group=req.group):
            duration = sess.workload(sess.windows_run, req.group,
                                     req.window)
        sess.windows_run += 1
        sess.run_time += duration
        self.clock += duration
        self._touch_clocks()

    def _touch_clocks(self) -> None:
        for other in self.active:
            other._now = self.clock

    def _complete(self, sess: ServerSession) -> None:
        psession = sess.psession
        driver = sess.driver
        try:
            psession.stop()
            # wall_time is this session's *own* accumulated window
            # time, not clock-since-grant: the node clock also
            # advances for interleaved sessions on other sockets, and
            # rate metrics must stay bit-identical to a standalone run.
            result = psession.read(wall_time=sess.run_time)
            psession.close()
        except ReproError as exc:
            self._evict(sess, SessionState.FAILED,
                        reason=f"readout failed: {exc}")
            return
        driver.end_epoch(sess.epoch)
        sess.result = result
        self._release(sess)
        self._finish(sess, SessionState.COMPLETED)

    def _evict(self, sess: ServerSession, state: SessionState, *,
               reason: str) -> None:
        """Forcibly end a RUNNING session through the crash-safety
        machinery: SIGKILL its simulated process (no teardown runs),
        then respawn-and-recover — the write-ahead journal is replayed
        backwards to bit-identical pristine MSR state and the stale
        socket locks are reclaimed — before the sockets go back into
        the free pool."""
        driver = sess.driver
        with _trace.span("server.preempt", node=self.name,
                         session=sess.id):
            driver.terminate()
            try:
                sess.psession.close()    # absorbs: the process is dead
            except Exception:
                pass
            driver.respawn()
            RecoveryEngine(driver).recover()
            driver.end_epoch(sess.epoch)
        self._release(sess)
        self._finish(sess, state, reason=reason)

    def _release(self, sess: ServerSession) -> None:
        for socket in sess.sockets:
            if self.busy.get(socket) is sess:
                del self.busy[socket]
        if sess in self.active:
            self.active.remove(sess)
        self.queue.charge(sess.tenant, sess.held)

    def _finish(self, sess: ServerSession, state: SessionState, *,
                reason: str = "") -> None:
        sess.state = state
        sess.reason = reason
        sess.end_clock = self.clock
        sess._now = self.clock
        self.counts[state] += 1
        if _trace.TRACER.enabled:
            _trace.incr(f"server.sessions.{state.name.lower()}")
        if self.on_terminal is not None:
            self.on_terminal(sess)

    # -- introspection ---------------------------------------------------------

    def accounting(self) -> dict:
        """Terminal-state accounting (the --verify surface)."""
        return {
            "submitted": self.submitted,
            "completed": self.counts[SessionState.COMPLETED],
            "timed_out": self.counts[SessionState.TIMED_OUT],
            "rejected": self.counts[SessionState.REJECTED],
            "preempted": self.counts[SessionState.PREEMPTED],
            "cancelled": self.counts[SessionState.CANCELLED],
            "failed": self.counts[SessionState.FAILED],
            "pending": self.pending,
        }
