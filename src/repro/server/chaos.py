"""Seeded network fault injection for the server plane.

PR 3 gave the msr *device* plane a deterministic :class:`~repro.oskern
.msr_driver.FaultPlan`; this module is the same philosophy applied to
the *network* plane: a :class:`ChaosPlan` is a seeded, deterministic
schedule of transport faults that the clients arm per connection
stream — connection refusals, mid-request and mid-reply disconnects,
torn JSON lines, duplicated deliveries, and injected latency.

All randomness comes from one ``random.Random`` stream per armed
endpoint, seeded by ``(plan seed, stream id)``, so a given client
against a given call sequence always injects the same faults — the
chaos CI job is exactly reproducible per client even though the
cross-client interleaving is scheduled by the event loop.

The faults are injected *client-side*, at the stream/socket-file
seam, which is where real network weather is observed: the server
never cooperates, so everything it survives (dedup, WAL recovery,
error replies) it survives against a genuinely oblivious peer.

Fault kinds (all independent, all optional; rates are per decision):

* ``refuse_rate`` — a ``connect()`` is refused outright.
* ``drop_request_rate`` — the connection tears mid-request: only a
  prefix of the JSON line reaches the server, then the stream dies.
* ``drop_reply_rate`` — the request is delivered and processed, but
  the connection dies before the reply is read.  This is the fault
  that *requires* idempotency keys: the client must retry an
  operation the server already executed.
* ``torn_reply_rate`` — the reply line arrives truncated mid-JSON.
* ``duplicate_rate`` — the request line is delivered twice (a
  retransmission storm); the server must deduplicate.
* ``delay_rate`` / ``delay_s`` — the request is delayed by
  ``delay_s`` real seconds before sending.

CLI syntax mirrors ``FaultPlan.from_string``::

    seed=3,refuse=0.05,drop_request=0.05,drop_reply=0.05,
    torn_reply=0.05,duplicate=0.1
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import trace as _trace

#: Short CLI aliases -> canonical field names.
_ALIASES = {
    "refuse": "refuse_rate",
    "drop_request": "drop_request_rate",
    "drop_reply": "drop_reply_rate",
    "torn_reply": "torn_reply_rate",
    "duplicate": "duplicate_rate",
    "delay": "delay_rate",
}

_RATE_FIELDS = ("refuse_rate", "drop_request_rate", "drop_reply_rate",
                "torn_reply_rate", "duplicate_rate", "delay_rate")


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic, seedable schedule of network faults."""

    seed: int = 0
    refuse_rate: float = 0.0
    drop_request_rate: float = 0.0
    drop_reply_rate: float = 0.0
    torn_reply_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0005

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {rate}")
        if self.delay_s < 0.0:
            raise ValueError(
                f"delay_s must be >= 0, got {self.delay_s}")

    @property
    def active(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def from_string(cls, text: str) -> "ChaosPlan":
        """Parse the CLI syntax: comma-separated ``key=value`` pairs.

        Keys are the field names or their short aliases (``refuse``,
        ``drop_request``, ``drop_reply``, ``torn_reply``,
        ``duplicate``, ``delay``); a repeated key is rejected rather
        than silently keeping the last value; empty segments are
        tolerated (trailing commas from shell composition)."""
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValueError(
                    f"bad chaos spec {part!r} (need key=value)")
            key, _, value = part.partition("=")
            key = _ALIASES.get(key.strip(), key.strip())
            value = value.strip()
            if key in kwargs:
                raise ValueError(f"duplicate chaos key {key!r}")
            if key in _RATE_FIELDS or key == "delay_s":
                kwargs[key] = float(value)
            elif key == "seed":
                kwargs[key] = int(value, 0)
            else:
                raise ValueError(f"unknown chaos key {key!r}")
        return cls(**kwargs)

    def arm(self, stream_id: str) -> "ChaosState":
        """Arm the plan for one connection stream; the rng is keyed
        by ``(seed, stream_id)`` so every client draws an independent
        but reproducible fault sequence."""
        return ChaosState(self, random.Random(f"{self.seed}:{stream_id}"))


#: Request fates (one decision per request send).
DELIVER = "deliver"
TORN_REQUEST = "torn_request"
DUPLICATE = "duplicate"
#: Reply fates (one decision per reply read).
DROP_REPLY = "drop_reply"
TORN_REPLY = "torn_reply"


class ChaosState:
    """Mutable per-stream state of an armed :class:`ChaosPlan`.

    Every injection is counted locally (``injected``) and into the
    shared trace registry (``server.chaos.<kind>``) — always-on, like
    the msr fault counters, so chaos accounting reconciles even with
    tracing disabled."""

    def __init__(self, plan: ChaosPlan, rng: random.Random):
        self.plan = plan
        self.rng = rng
        self.injected: dict[str, int] = {}

    def _inject(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        _trace.incr(f"server.chaos.{kind}")

    def refuse_connect(self) -> bool:
        if self.plan.refuse_rate > 0.0 \
                and self.rng.random() < self.plan.refuse_rate:
            self._inject("refused")
            return True
        return False

    def request_fate(self) -> str:
        plan = self.plan
        if plan.drop_request_rate > 0.0 \
                and self.rng.random() < plan.drop_request_rate:
            self._inject("torn_request")
            return TORN_REQUEST
        if plan.duplicate_rate > 0.0 \
                and self.rng.random() < plan.duplicate_rate:
            self._inject("duplicated")
            return DUPLICATE
        return DELIVER

    def reply_fate(self) -> str:
        plan = self.plan
        if plan.drop_reply_rate > 0.0 \
                and self.rng.random() < plan.drop_reply_rate:
            self._inject("dropped_reply")
            return DROP_REPLY
        if plan.torn_reply_rate > 0.0 \
                and self.rng.random() < plan.torn_reply_rate:
            self._inject("torn_reply")
            return TORN_REPLY
        return DELIVER

    def delay(self) -> float:
        """Seconds of injected latency before this send (0.0 = none)."""
        plan = self.plan
        if plan.delay_rate > 0.0 \
                and self.rng.random() < plan.delay_rate:
            self._inject("delayed")
            return plan.delay_s
        return 0.0

    def tear(self, data: bytes) -> bytes:
        """A strict prefix of *data* — what survives a torn delivery.

        Always at least one byte short of complete (a torn line never
        carries its newline) and deterministic under the stream rng."""
        if len(data) <= 1:
            return b""
        return data[:self.rng.randrange(1, len(data))]
