#!/usr/bin/env python
"""Case studies 2 and 3: the topology-aware temporally blocked stencil.

Reproduces Figure 11 (MLUPS vs problem size for three pinnings of the
wavefront Jacobi code) as a text chart, and Table II (uncore traffic of
the three kernel variants) measured through likwid-perfctr with socket
locks.

Run:  python examples/stencil_blocking.py
"""

from repro.experiments import figure11_jacobi_sweep, table2_uncore
from repro.tables import render_table

SIZES = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500)
MAX_MLUPS = 2000.0
WIDTH = 50

MARKS = {"wavefront 1x4": "o",
         "wavefront 1x4 (2 per socket)": "x",
         "threaded": "^"}


def chart(curves) -> str:
    lines = [f"    MLUPS 0 {'.' * (WIDTH - 2)} {MAX_MLUPS:.0f}"]
    for i, n in enumerate(SIZES):
        row = [" "] * WIDTH
        for label, series in curves.items():
            value = series[i][1]
            pos = min(WIDTH - 1, int(value / MAX_MLUPS * WIDTH))
            row[pos] = MARKS[label]
        lines.append(f"  N={n:>3}  |{''.join(row)}|")
    legend = "   ".join(f"{mark} {label}" for label, mark in MARKS.items())
    lines.append(f"          {legend}")
    return "\n".join(lines)


def main() -> None:
    print("Figure 11: optimized 3D Jacobi smoother on dual-socket "
          "Nehalem EP (4 threads)\n")
    curves = figure11_jacobi_sweep(sizes=SIZES)
    print(chart(curves))
    print("""
Correct pinning (o) keeps the four-thread wavefront group inside one
socket's shared L3; splitting pairs across sockets (x) reverses the
optimization and falls below the nontemporal threaded baseline (^).
""")

    print("Table II: uncore measurement of the traffic reduction "
          "(one socket, likwid-perfctr socket locks)\n")
    rows = table2_uncore()
    print(render_table(
        ["", *[r.variant for r in rows]],
        [["UNC_L3_LINES_IN_ANY"] + [f"{r.l3_lines_in:.3g}" for r in rows],
         ["UNC_L3_LINES_OUT_ANY"] + [f"{r.l3_lines_out:.3g}" for r in rows],
         ["Total data volume [GB]"] + [f"{r.data_volume_gb:.2f}"
                                       for r in rows],
         ["Performance [MLUPS]"] + [f"{r.mlups:.0f}" for r in rows]]))
    blocked = next(r for r in rows if r.variant == "wavefront")
    threaded = next(r for r in rows if r.variant == "threaded")
    print(f"\ntraffic cut {threaded.data_volume_gb / blocked.data_volume_gb:.1f}x, "
          f"speedup only {blocked.mlups / threaded.mlups:.2f}x — one data "
          "stream cannot saturate the memory bus (paper's point (i)).")

    # The model's own diagnosis of that claim:
    from repro.hw.arch import get_arch
    from repro.model.ecm import PlacedWork
    from repro.model.explain import diagnose
    from repro.workloads.jacobi import JacobiConfig, jacobi_phase
    spec = get_arch("nehalem_ep")
    print("\nmodel diagnosis (why the speedup is sub-proportional):")
    for variant in ("threaded", "wavefront"):
        cfg = JacobiConfig(variant, 480, 18, 4)
        phase = jacobi_phase(spec, cfg)
        work = [PlacedWork(i, cpu, 0, phase)
                for i, cpu in enumerate([0, 1, 2, 3])]
        d = diagnose(spec, work)
        print(f"  {variant:12s}: bottleneck {d.bottlenecks()}, "
              f"socket mem util {d.sockets[0].mem_utilisation:.0%}")


if __name__ == "__main__":
    main()
