#!/usr/bin/env python
"""Hybrid MPI+OpenMP pinning (the paper's §II.C skip-mask example).

Simulates::

    $ export OMP_NUM_THREADS=8
    $ mpiexec -n 4 -pernode likwid-pin -c 0-7 -s 0x3 ./a.out

on a 4-node Westmere EP cluster, and contrasts the correct hybrid
skip mask (0x3: don't pin the MPI progress thread nor the OpenMP
shepherd) with the plain Intel mask (0x1), which lets the OpenMP
shepherd steal a core and wraps a worker onto the master's core.

Run:  python examples/hybrid_mpi.py
"""

from repro.core.pin import LikwidPin
from repro.oskern.mpi import MpiExec, SimCluster
from repro.workloads.runner import run_team
from repro.workloads.stream import triad_phase

NODES = 4
OMP_THREADS = 8
ELEMENTS = 8_000_000


def launch(skip_mask: int):
    cluster = SimCluster("westmere_ep", NODES, seed=7)
    mpiexec = MpiExec(cluster)

    def setup(kernel):
        return LikwidPin(kernel).launch("0-7", skip=skip_mask).master

    mpiexec.run(NODES, pernode=True, setup=setup)
    mpiexec.spawn_teams(OMP_THREADS)
    mpiexec.place_all()
    return mpiexec


def measure(mpiexec) -> float:
    total = 0.0
    for rank in mpiexec.ranks:
        result = run_team(
            rank.node.machine, rank.node.kernel, rank.team,
            lambda _i, n: triad_phase("icc", ELEMENTS // n),
            migrate=False)
        total += 24.0 * ELEMENTS / result.total_time
    return total


def describe(mpiexec, label: str) -> None:
    print(f"\n--- skip mask {label} ---")
    rank = mpiexec.ranks[0]
    kernel = rank.node.kernel
    placements = sorted(t.hwthread for t in rank.compute_threads)
    print(f"rank 0 compute threads on cores: {placements}")
    progress = rank.progress_thread
    pinned = len(kernel.sched_getaffinity(progress.tid)) == 1
    print(f"MPI progress thread pinned: {pinned}")
    shepherd = rank.team.created[0]
    pinned = len(kernel.sched_getaffinity(shepherd.tid)) == 1
    print(f"OpenMP shepherd pinned:     {pinned}")
    bw = measure(mpiexec)
    print(f"aggregate STREAM bandwidth over {NODES} nodes: "
          f"{bw / 1e9:.1f} GB/s")


def main() -> None:
    print(f"mpiexec -n {NODES} -pernode likwid-pin -c 0-7 -s <mask> "
          f"./a.out   (OMP_NUM_THREADS={OMP_THREADS})")
    describe(launch(0x3), "0x3 (correct for Intel MPI + Intel OpenMP)")
    describe(launch(0x1), "0x1 (WRONG: forgets the MPI progress thread)")
    print("\nThe wrong mask lets a management thread occupy a compute "
          "core and\nwraps a worker onto the master's core — exactly the "
          "oversubscription\npathology likwid-pin's -t presets prevent.")


if __name__ == "__main__":
    main()
