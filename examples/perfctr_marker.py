#!/usr/bin/env python
"""Reproduce the paper's §II.A marker-mode listing.

``likwid-perfctr -c 0-3 -g FLOPS_DP -m ./a.out`` on an Intel Core 2
Quad, with two named regions ("Init" and "Benchmark"): Init touches the
arrays (almost no floating point), Benchmark runs a vectorised triad —
so Init shows near-zero DP MFlops/s while Benchmark saturates, exactly
the contrast of the paper's output tables.

Run:  python examples/perfctr_marker.py
"""

from repro import OSKernel, create_machine
from repro.core.perfctr import LikwidPerfCtr, MarkerAPI
from repro.core.perfctr.output import render_header, render_result
from repro.model.ecm import KernelPhase, PlacedWork, solve
from repro.workloads.runner import apply_result


def run_phase(machine, phase, cpus):
    """Execute one phase on the given cores and feed the PMUs."""
    work = [PlacedWork(tid=i, hwthread=cpu, memory_socket=0, phase=phase)
            for i, cpu in enumerate(cpus)]
    apply_result(machine, solve(machine.spec, work))


def main() -> None:
    machine = create_machine("core2")
    OSKernel(machine, seed=0)  # boot the OS (not otherwise needed here)
    cpus = [0, 1, 2, 3]

    # int coreID = likwid_processGetProcessorId(); ...
    perfctr = LikwidPerfCtr(machine)
    session = perfctr.session(cpus, "FLOPS_DP")
    session.start()
    marker = MarkerAPI(session)

    # likwid_markerInit(numberOfThreads, numberOfRegions);
    marker.likwid_markerInit(4, 2)
    init_id = marker.likwid_markerRegisterRegion("Init")
    bench_id = marker.likwid_markerRegisterRegion("Benchmark")

    # Region "Init": array initialisation, no SIMD arithmetic.
    init_phase = KernelPhase(
        "init", iters=100_000, flops_per_iter=0.0, instr_per_iter=3.5,
        cycles_per_iter=4.5, stores_per_iter=1.0,
        mem_read_bytes_per_iter=0.0, mem_write_bytes_per_iter=8.0)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStartRegion(thread, cpu)
    run_phase(machine, init_phase, cpus)
    for thread, cpu in enumerate(cpus):
        marker.likwid_markerStopRegion(thread, cpu, init_id)

    # Region "Benchmark": packed-double vector triad, repeated — the
    # marker API accumulates over all executions of the region.
    bench_phase = KernelPhase(
        "triad", iters=2_048_000, flops_per_iter=2.0, packed_fraction=1.0,
        instr_per_iter=4.6, cycles_per_iter=3.5, loads_per_iter=2.0,
        stores_per_iter=1.0)
    for _ in range(4):
        for thread, cpu in enumerate(cpus):
            marker.likwid_markerStartRegion(thread, cpu)
        run_phase(machine, bench_phase, cpus)
        for thread, cpu in enumerate(cpus):
            marker.likwid_markerStopRegion(thread, cpu, bench_id)

    marker.likwid_markerClose()
    session.stop()

    print(render_header(machine, "FLOPS_DP"))
    for region in marker.region_names():
        print(render_result(machine, marker.region_result(region),
                            region=f"{region}"))
        print()


if __name__ == "__main__":
    main()
