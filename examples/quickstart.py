#!/usr/bin/env python
"""Quickstart: the LIKWID workflow in five minutes.

1. Probe the node's thread and cache topology (likwid-topology).
2. Pin an OpenMP STREAM run to the right cores (likwid-pin).
3. Measure memory bandwidth with performance counters (likwid-perfctr).

Run:  python examples/quickstart.py
"""

from repro import OSKernel, create_machine
from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.output import render_header, render_result
from repro.core.topology import probe_topology, render_topology
from repro.core.topology_ascii import render_ascii
from repro.workloads.stream import run_stream, scatter_pin_list


def main() -> None:
    # -- 1. likwid-topology -c -g ------------------------------------------
    machine = create_machine("westmere_ep")
    topology = probe_topology(machine)
    print(render_topology(topology))
    print(render_ascii(topology, socket=0))

    # -- 2. likwid-pin: scatter four threads across both sockets ----------
    kernel = OSKernel(machine, seed=42)
    pin = scatter_pin_list(machine.spec, 4)
    print(f"\npinning 4 threads scatter-style to cores {pin}")

    # -- 3. likwid-perfctr -c <pins> -g MEM <stream> -----------------------
    perfctr = LikwidPerfCtr(machine)
    result = perfctr.wrap(
        pin, "MEM",
        lambda: run_stream(machine, kernel, nthreads=4, compiler="icc",
                           pin_cpus=pin).result)
    print()
    print(render_header(machine, "MEM"))
    print(render_result(machine, result))

    lock_cpu = pin[0]
    bw = result.metric(lock_cpu, "Memory bandwidth [MBytes/s]")
    print(f"\nsocket-0 memory bandwidth (uncore, socket lock on core "
          f"{lock_cpu}): {bw:.0f} MB/s")


if __name__ == "__main__":
    main()
