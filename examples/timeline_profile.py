#!/usr/bin/env python
"""Beyond aggregate counts: timeline mode and statistical sampling.

Two extensions of the paper's counting model on the same substrate:

1. **Timeline mode** — periodic counter readout exposes phase
   behaviour that one aggregate number hides (a ramping FLOP rate).
2. **Overflow-driven sampling** — the PMU's counter-overflow interrupt
   drives a statistical profiler (the paper's §II.A "IP sampling"
   option and its "profiling, also on the assembly level" outlook).

Run:  python examples/timeline_profile.py
"""

from repro import create_machine
from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.timeline import TimelineMeasurement, render_timeline
from repro.core.profile import CodeSegment, SamplingProfiler
from repro.hw.events import Channel


def timeline_demo() -> None:
    print("=== timeline mode: likwid-perfctr -g FLOPS_DP -d 1.0 ===\n")
    machine = create_machine("nehalem_ep")
    perfctr = LikwidPerfCtr(machine)
    timeline = TimelineMeasurement(perfctr, [0], "FLOPS_DP", interval=1.0)

    def application_slice(index: int, interval: float) -> None:
        # A solver that converges: FLOP intensity ramps up, then idles.
        intensity = [0.2, 0.8, 1.0, 1.0, 0.3, 0.05][index]
        machine.apply_counts(
            {0: {Channel.FLOPS_PACKED_DP: 1.0e9 * intensity * interval,
                 Channel.INSTRUCTIONS: 2.0e9 * interval,
                 Channel.CORE_CYCLES: 2.66e9 * interval}},
            elapsed_seconds=interval)

    timeline.run(application_slice, 6)
    print(render_timeline(timeline, 0, "FP_COMP_OPS_EXE_SSE_FP_PACKED"))
    mflops = timeline.metric_series(0, "DP MFlops/s")
    print("\nper-interval DP MFlops/s:",
          [f"{v:.0f}" for v in mflops])


def profiler_demo() -> None:
    print("\n=== overflow sampling: a cycles profile ===\n")
    machine = create_machine("nehalem_ep")
    segments = [
        CodeSegment("init_arrays", 0.4e9),
        CodeSegment("assemble_matrix", 1.2e9,
                    {Channel.L1D_REPLACEMENT: 2e6}),
        CodeSegment("solve_pressure", 6.0e9,
                    {Channel.FLOPS_PACKED_DP: 3e9}),
        CodeSegment("write_output", 0.4e9),
    ]
    profiler = SamplingProfiler(machine, 0, period=10_000_000)
    profiler.run(segments)
    print(profiler.render())

    print("\nSame code, sampled on L1D_REPL instead of cycles "
          "(a cache-miss profile):")
    miss_profiler = SamplingProfiler(create_machine("nehalem_ep"), 0,
                                     event="L1D_REPL", period=100_000)
    miss_profiler.run(segments, chunk=10_000_000)
    print(miss_profiler.render())


def main() -> None:
    timeline_demo()
    profiler_demo()


if __name__ == "__main__":
    main()
