#!/usr/bin/env python
"""Roofline study: blocked DGEMM under likwid-perfctr's FLOPS_DP group.

Sweeps the blocking factor of a dense matrix multiply on one Westmere
core and measures each run with the FLOPS_DP group; the model's
bottleneck diagnosis names the limiting resource at every point. The
crossover from memory-bound to compute-bound happens where the
machine balance says it must (peak_flops x 16/b == thread bandwidth).

Run:  python examples/roofline_dgemm.py
"""

from repro import OSKernel, create_machine
from repro.core.perfctr import LikwidPerfCtr
from repro.model.ecm import PlacedWork
from repro.model.explain import diagnose
from repro.tables import render_table
from repro.workloads.matmul import (MatmulConfig, matmul_phase, peak_gflops,
                                    run_matmul)

BLOCKS = (1, 2, 4, 8, 16, 32, 64)
N = 512


def main() -> None:
    machine = create_machine("westmere_ep")
    spec = machine.spec
    perfctr = LikwidPerfCtr(machine)
    kernel = OSKernel(machine, seed=0)
    peak = peak_gflops(spec, 1)
    print(f"DGEMM n={N} on one {spec.cpu_name} core "
          f"(SSE peak {peak:.1f} GFlop/s)\n")

    rows = []
    for block in BLOCKS:
        cfg = MatmulConfig(N, block, 1)
        outcome = {}

        def application(cfg=cfg, outcome=outcome):
            r = run_matmul(machine, kernel, cfg, pin_cpus=[0])
            outcome["gflops"] = r.gflops
            return r.result

        result = perfctr.wrap([0], "FLOPS_DP", application)
        measured = result.metric(0, "DP MFlops/s") / 1000.0
        d = diagnose(spec, [PlacedWork(0, 0, 0, matmul_phase(spec, cfg))])
        bar = "#" * int(outcome["gflops"] / peak * 30)
        rows.append([block, f"{outcome['gflops']:.2f}",
                     f"{measured:.2f}", d.threads[0].bottleneck,
                     f"|{bar:<30}|"])
    print(render_table(
        ["block", "model GF/s", "FLOPS_DP GF/s", "bottleneck",
         "fraction of peak"], rows))
    balance_block = spec.clock_hz * 4.0 / 2 * 16.0 / spec.perf.thread_mem_bw
    print(f"\nmachine balance predicts the crossover near b = "
          f"{balance_block:.0f}: below it the tile traffic "
          "(16/b bytes per FMA) exceeds one thread's bandwidth.")


if __name__ == "__main__":
    main()
