#!/usr/bin/env python
"""Case study 1 in miniature: why pinning matters (Figs 4/5/7/8).

Runs the OpenMP STREAM triad on the simulated Westmere EP node with
and without likwid-pin, for both compiler models, and prints text
box-plots of the bandwidth distributions — the variance collapse the
paper's figures show.

Run:  python examples/pinning_study.py
"""

import statistics

from repro import create_machine
from repro.workloads.stream import stream_samples

THREAD_COUNTS = (1, 2, 4, 6, 8, 12, 16, 24)
WIDTH = 46
MAX_BW = 45000.0


def bar(samples: list[float]) -> str:
    """Render min..median..max as a text box plot."""
    lo, med, hi = min(samples), statistics.median(samples), max(samples)
    cells = [" "] * WIDTH
    pos = lambda v: min(WIDTH - 1, int(v / MAX_BW * WIDTH))
    for i in range(pos(lo), pos(hi) + 1):
        cells[i] = "-"
    cells[pos(lo)] = "|"
    cells[pos(hi)] = "|"
    cells[pos(med)] = "#"
    return "".join(cells) + f"  med {med:7.0f} MB/s"


def study(machine, compiler: str) -> None:
    print(f"\n=== {compiler} on {machine.spec.cpu_name} ===")
    for pinned in (False, True):
        label = "pinned (likwid-pin, scatter)" if pinned else "not pinned"
        print(f"\n  {label}:")
        print(f"  {'thr':>4}  0 {'MB/s'.center(WIDTH - 4)} {MAX_BW:.0f}")
        for n in THREAD_COUNTS:
            samples = stream_samples(machine, nthreads=n, compiler=compiler,
                                     pinned=pinned,
                                     samples=8 if pinned else 60)
            print(f"  {n:>4}  {bar(samples)}")


def main() -> None:
    machine = create_machine("westmere_ep")
    study(machine, "icc")
    study(machine, "gcc")

    istanbul = create_machine("amd_istanbul")
    print(f"\n=== icc on {istanbul.spec.cpu_name} (Figs 9/10) ===")
    for pinned in (False, True):
        samples = stream_samples(istanbul, nthreads=6, compiler="icc",
                                 pinned=pinned, samples=40)
        spread = max(samples) - min(samples)
        print(f"  6 threads {'pinned  ' if pinned else 'unpinned'}: "
              f"median {statistics.median(samples):7.0f} MB/s, "
              f"spread {spread:7.0f} MB/s")


if __name__ == "__main__":
    main()
