#!/usr/bin/env python
"""The bandwidth map (paper outlook): cache/memory bandwidth overview.

Produces the working-set bandwidth ladder for one core and for a full
socket, and the ccNUMA core-domain x memory-domain matrix — "a quick
overview of the cache and memory bandwidth bottlenecks in a
shared-memory node, including the ccNUMA behavior".

Run:  python examples/bandwidth_map.py
"""

from repro import create_machine
from repro.core.bench import (bandwidth_ladder, numa_bandwidth_map,
                              render_ladder, render_numa_map)


def main() -> None:
    machine = create_machine("westmere_ep")
    print(f"bandwidth map for {machine.spec.cpu_name}\n")

    print("== load kernel, 1 thread (core 0) ==")
    print(render_ladder(bandwidth_ladder(machine, "load", cpus=[0])))

    socket0 = machine.spec.hwthreads_of_socket(0)[::2]   # 6 physical cores
    print("\n== triad kernel, 6 threads (socket 0) ==")
    print(render_ladder(bandwidth_ladder(machine, "triad", cpus=socket0)))

    print("\n== ccNUMA map (copy kernel, reported GB/s) ==")
    print(render_numa_map(numa_bandwidth_map(machine)))
    print("\nDiagonal: local memory. Off-diagonal: the QPI-limited "
          "remote path —\nwhy first-touch placement plus pinning "
          "matters for bandwidth-bound codes.")


if __name__ == "__main__":
    main()
