#!/usr/bin/env python
"""likwid-features in action (§II.D): measuring prefetcher impact.

Toggles the Core 2 hardware prefetchers through IA32_MISC_ENABLE and
measures, with likwid-perfctr over the exact cache simulator, how L1
line traffic and effective latency change for three access patterns —
the experiment the paper motivates with "often it is beneficial to
know the influence of the hardware prefetchers".

Run:  python examples/prefetcher_study.py
"""

from repro import create_machine
from repro.core.features import LikwidFeatures
from repro.core.perfctr import LikwidPerfCtr
from repro.oskern.msr_driver import MsrDriver
from repro.tables import render_table
from repro.workloads.kernels import random_load, streaming_load, strided_load
from repro.workloads.runner import run_trace

PATTERNS = {
    "sequential": lambda: streaming_load(40_000),
    "strided (2 lines)": lambda: strided_load(20_000, 128),
    "random access": lambda: random_load(20_000, 1 << 22),
}


def measure(prefetch_on: bool):
    machine = create_machine("core2")
    features = LikwidFeatures(MsrDriver(machine))
    if not prefetch_on:
        for key in ("HW_PREFETCHER", "CL_PREFETCHER",
                    "DCU_PREFETCHER", "IP_PREFETCHER"):
            features.disable(key)
    perfctr = LikwidPerfCtr(machine)
    out = {}
    for name, make_trace in PATTERNS.items():
        result = perfctr.wrap(
            [0], "L1D_REPL:PMC0",
            lambda mt=make_trace: run_trace(machine, 0, mt()))
        cycles = result.event(0, "CPU_CLK_UNHALTED_CORE")
        instr = result.event(0, "INSTR_RETIRED_ANY")
        out[name] = (result.event(0, "L1D_REPL"), cycles / instr)
    return out


def main() -> None:
    machine = create_machine("core2")
    print(LikwidFeatures(MsrDriver(machine)).report())
    print("\ndisabling all prefetchers on the measurement machine:"
          "\n  $ likwid-features -u HW_PREFETCHER -u CL_PREFETCHER"
          " -u DCU_PREFETCHER -u IP_PREFETCHER\n")

    on = measure(True)
    off = measure(False)
    rows = []
    for name in PATTERNS:
        repl_on, cpi_on = on[name]
        repl_off, cpi_off = off[name]
        rows.append([name, f"{repl_on:.0f}", f"{repl_off:.0f}",
                     f"{cpi_on:.2f}", f"{cpi_off:.2f}",
                     f"{cpi_off / cpi_on:.2f}x"])
    print(render_table(
        ["pattern", "L1D_REPL on", "L1D_REPL off",
         "CPI on", "CPI off", "slowdown off"], rows))
    print("\nPrefetchers hide latency for regular patterns (sequential, "
          "strided) but cannot help random access — turning "
          "them off is only ever interesting for irregular codes, where\n"
          "they mostly add useless fills.")


if __name__ == "__main__":
    main()
