#!/usr/bin/env python3
"""Benchmark regression gate for CI (ISSUE 4 satellite).

Two modes, both stdlib-only so the CI job needs nothing installed
beyond the test toolchain:

``record``
    Convert a ``pytest --benchmark-json`` dump into the compact
    trajectory format committed/uploaded by CI::

        python tools/bench_gate.py record raw.json BENCH_2026-08-06.json

    The output carries the UTC date, a machine fingerprint (so
    cross-machine comparisons are visibly apples-to-oranges) and the
    median nanoseconds of every benchmark.

``check``
    Compare a recorded file against the committed baseline::

        python tools/bench_gate.py check BENCH_today.json BENCH_baseline.json

    Exit 1 if any benchmark's median regressed more than the
    threshold (default 25%, ``--threshold 1.25``); benchmarks present
    on only one side are warned about, never fatal — adding a bench
    must not break CI until a baseline bump records it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys


def fingerprint() -> dict:
    return {
        "node": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 0,
    }


def record(raw_path: str, out_path: str) -> int:
    with open(raw_path) as fh:
        raw = json.load(fh)
    benchmarks = {}
    for bench in raw.get("benchmarks", []):
        # pytest-benchmark stats are in seconds; store integral ns.
        benchmarks[bench["name"]] = int(bench["stats"]["median"] * 1e9)
    if not benchmarks:
        print(f"bench_gate: no benchmarks in {raw_path}", file=sys.stderr)
        return 1
    payload = {
        "date": datetime.date.today().isoformat(),
        "machine": fingerprint(),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"bench_gate: recorded {len(benchmarks)} medians -> {out_path}")
    return 0


def check(current_path: str, baseline_path: str, threshold: float) -> int:
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    cur, base = current["benchmarks"], baseline["benchmarks"]

    for name in sorted(set(base) - set(cur)):
        print(f"bench_gate: warning: '{name}' in baseline but not in "
              f"current run (removed bench?)", file=sys.stderr)
    for name in sorted(set(cur) - set(base)):
        print(f"bench_gate: warning: '{name}' has no baseline yet "
              f"(new bench — bump {baseline_path} to gate it)",
              file=sys.stderr)

    failures = []
    for name in sorted(set(cur) & set(base)):
        if base[name] <= 0:
            continue
        ratio = cur[name] / base[name]
        marker = "FAIL" if ratio > threshold else "ok"
        print(f"bench_gate: {marker:>4}  {ratio:>6.2f}x  "
              f"{cur[name]:>14,} ns vs {base[name]:>14,} ns  {name}")
        if ratio > threshold:
            failures.append((name, ratio))
    if failures:
        print(f"bench_gate: {len(failures)} benchmark(s) regressed "
              f"beyond {threshold:.2f}x the committed baseline:",
              file=sys.stderr)
        for name, ratio in failures:
            print(f"bench_gate:   {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"bench_gate: {len(set(cur) & set(base))} benchmark(s) within "
          f"{threshold:.2f}x of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_gate.py",
        description="Record benchmark medians / gate against a baseline.")
    sub = parser.add_subparsers(dest="mode", required=True)
    rec = sub.add_parser("record", help="pytest-benchmark JSON -> trajectory")
    rec.add_argument("raw", help="pytest --benchmark-json output")
    rec.add_argument("out", help="BENCH_<date>.json to write")
    chk = sub.add_parser("check", help="gate current medians vs baseline")
    chk.add_argument("current", help="a recorded BENCH_*.json")
    chk.add_argument("baseline", help="the committed BENCH_baseline.json")
    chk.add_argument("--threshold", type=float, default=1.25,
                     help="fail above current/baseline ratio "
                          "(default: %(default)s)")
    args = parser.parse_args(argv)
    if args.mode == "record":
        return record(args.raw, args.out)
    return check(args.current, args.baseline, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
