"""Ablation: exact cache simulation vs the analytic traffic model.

DESIGN.md design-decision 1: large workloads run on the analytic
ECM-style model because trace-driven simulation is too slow for 75 GB
of traffic.  This bench validates the substitution: for streaming
kernels where both substrates apply, the exact simulator's line
traffic must match the analytic per-iteration volumes the workloads
assume (24 B/iter for a write-allocate triad, 16 B/iter with
nontemporal stores, 8 B/line for pure streams).
"""

import pytest

from repro.hw.cache import CacheHierarchy
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec
from repro.workloads.kernels import streaming_load, streaming_triad

N = 16384  # elements per stream; large vs the hierarchy below


def hierarchy():
    return CacheHierarchy([
        CacheSpec(1, "Data cache", 32 * 1024, 8, 64),
        CacheSpec(2, "Unified cache", 256 * 1024, 8, 64),
    ], PrefetcherConfig.all_off())


def run(h, trace):
    for op, addr, stream in trace:
        if op == "L":
            h.load(addr, stream=stream)
        elif op == "S":
            h.store(addr, stream=stream)
        else:
            h.store(addr, stream=stream, nontemporal=True)
    return h


def test_stream_read_traffic_exact_vs_analytic(benchmark):
    """Pure load stream: analytic model says 8 B DRAM read per element
    (one line per 8 doubles)."""
    h = benchmark.pedantic(run, args=(hierarchy(), streaming_load(N)),
                           iterations=1, rounds=1)
    analytic_lines = N * 8 / 64
    assert h.dram_reads == pytest.approx(analytic_lines, rel=0.01)


def test_triad_write_allocate_traffic(benchmark):
    """gcc-style triad: 24 B read (b, c, write-allocate a) + 8 B write
    back per element — the 32 B/iter the gcc STREAM phase assumes."""
    h = benchmark.pedantic(run, args=(hierarchy(), streaming_triad(N)),
                           iterations=1, rounds=1)
    per_iter_read = h.dram_reads * 64 / N
    assert per_iter_read == pytest.approx(24.0, rel=0.02)
    # Writebacks trail the run while dirty lines sit in the caches;
    # flush with a disjoint read sweep, then all of a's lines are out.
    for op, addr, stream in streaming_load(64 * 1024, base=1 << 34,
                                           stream=9):
        h.load(addr, stream=stream)
    per_iter_write = h.dram_writes * 64 / N
    assert per_iter_write == pytest.approx(8.0, rel=0.02)


def test_triad_nontemporal_traffic(benchmark):
    """icc-style triad: NT stores eliminate the write-allocate, leaving
    16 B read + 8 B NT write per element — the icc phase's numbers."""
    h = benchmark.pedantic(
        run, args=(hierarchy(), streaming_triad(N, nontemporal=True)),
        iterations=1, rounds=1)
    assert h.dram_reads * 64 / N == pytest.approx(16.0, rel=0.02)
    assert h.dram_writes * 64 / N == pytest.approx(8.0, rel=0.02)


def test_nt_saving_matches_analytic_ratio(benchmark):
    """The exact simulator reproduces the write-allocate saving the
    analytic model assumes: NT stores drop the triad from 32 to 24
    bytes per element (25%; the paper's Jacobi saves 1/3 because it
    has a single read stream)."""
    wa = benchmark.pedantic(run, args=(hierarchy(), streaming_triad(N)),
                            iterations=1, rounds=1)
    nt = run(hierarchy(), streaming_triad(N, nontemporal=True))
    # Flush the write-allocate run so trailing dirty lines reach DRAM.
    for _op, addr, stream in streaming_load(64 * 1024, base=1 << 34,
                                            stream=9):
        wa.load(addr, stream=stream)
    total_wa = (wa.dram_reads - 64 * 1024 * 8 // 64 + wa.dram_writes) * 64
    total_nt = (nt.dram_reads + nt.dram_writes) * 64
    assert 1 - total_nt / total_wa == pytest.approx(0.25, abs=0.02)


def test_blocked_reuse_cuts_traffic(benchmark):
    """Temporal blocking in miniature: sweeping a cache-sized block R
    times costs ~1/R of the streaming traffic per access."""
    from repro.workloads.kernels import blocked_sum
    repeats = 4
    blocked = benchmark.pedantic(
        run, args=(hierarchy(), blocked_sum(N, 16 * 1024, repeats)),
        iterations=1, rounds=1)
    streamed = run(hierarchy(), streaming_load(N))
    blocked_per_access = blocked.dram_reads / (N * repeats // 1)
    stream_per_access = streamed.dram_reads / N
    assert blocked_per_access == pytest.approx(stream_per_access / repeats,
                                               rel=0.1)
