"""Ablation: exact cache simulation vs the analytic traffic model.

DESIGN.md design-decision 1: large workloads run on the analytic
ECM-style model because trace-driven simulation is too slow for 75 GB
of traffic.  This bench validates the substitution: for streaming
kernels where both substrates apply, the exact simulator's line
traffic must match the analytic per-iteration volumes the workloads
assume (24 B/iter for a write-allocate triad, 16 B/iter with
nontemporal stores, 8 B/line for pure streams).

Every traffic test runs through the ``engine`` selector (defaulting
to the batched replay engine, like :func:`repro.workloads.run_trace`)
and is parametrised over both engines — the counts must be identical.
``test_batched_replay_speedup`` pins the performance contract: the
batched engine replays a captured trace at ≥ 3× the scalar
per-access speed at these default sizes.
"""

import time

import pytest

from repro.hw.batch import BatchHierarchy, encode_trace
from repro.hw.cache import CacheHierarchy
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec
from repro.workloads.kernels import streaming_load, streaming_triad
from repro.workloads.trace_cache import trace_arrays

N = 16384  # elements per stream; large vs the hierarchy below

ENGINES = ["batched", "scalar"]

SPECS = [
    CacheSpec(1, "Data cache", 32 * 1024, 8, 64),
    CacheSpec(2, "Unified cache", 256 * 1024, 8, 64),
]


def hierarchy(engine="batched"):
    cls = BatchHierarchy if engine == "batched" else CacheHierarchy
    return cls(list(SPECS), PrefetcherConfig.all_off())


def run(h, trace, engine="batched"):
    """Feed *trace* through *h* using the selected execution engine."""
    if engine == "batched":
        h.replay(encode_trace(trace))
        return h
    for op, addr, stream in trace:
        if op == "L":
            h.load(addr, stream=stream)
        elif op == "S":
            h.store(addr, stream=stream)
        else:
            h.store(addr, stream=stream, nontemporal=True)
    return h


def execute(trace, engine):
    return run(hierarchy(engine), trace, engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_stream_read_traffic_exact_vs_analytic(benchmark, engine):
    """Pure load stream: analytic model says 8 B DRAM read per element
    (one line per 8 doubles)."""
    h = benchmark.pedantic(execute, args=(streaming_load(N), engine),
                           iterations=1, rounds=1)
    analytic_lines = N * 8 / 64
    assert h.dram_reads == pytest.approx(analytic_lines, rel=0.01)


@pytest.mark.parametrize("engine", ENGINES)
def test_triad_write_allocate_traffic(benchmark, engine):
    """gcc-style triad: 24 B read (b, c, write-allocate a) + 8 B write
    back per element — the 32 B/iter the gcc STREAM phase assumes."""
    h = benchmark.pedantic(execute, args=(streaming_triad(N), engine),
                           iterations=1, rounds=1)
    per_iter_read = h.dram_reads * 64 / N
    assert per_iter_read == pytest.approx(24.0, rel=0.02)
    # Writebacks trail the run while dirty lines sit in the caches;
    # flush with a disjoint read sweep, then all of a's lines are out.
    for op, addr, stream in streaming_load(64 * 1024, base=1 << 34,
                                           stream=9):
        h.load(addr, stream=stream)
    per_iter_write = h.dram_writes * 64 / N
    assert per_iter_write == pytest.approx(8.0, rel=0.02)


@pytest.mark.parametrize("engine", ENGINES)
def test_triad_nontemporal_traffic(benchmark, engine):
    """icc-style triad: NT stores eliminate the write-allocate, leaving
    16 B read + 8 B NT write per element — the icc phase's numbers."""
    h = benchmark.pedantic(
        execute, args=(streaming_triad(N, nontemporal=True), engine),
        iterations=1, rounds=1)
    assert h.dram_reads * 64 / N == pytest.approx(16.0, rel=0.02)
    assert h.dram_writes * 64 / N == pytest.approx(8.0, rel=0.02)


def test_nt_saving_matches_analytic_ratio(benchmark):
    """The exact simulator reproduces the write-allocate saving the
    analytic model assumes: NT stores drop the triad from 32 to 24
    bytes per element (25%; the paper's Jacobi saves 1/3 because it
    has a single read stream)."""
    wa = benchmark.pedantic(execute, args=(streaming_triad(N), "batched"),
                            iterations=1, rounds=1)
    nt = execute(streaming_triad(N, nontemporal=True), "batched")
    # Flush the write-allocate run so trailing dirty lines reach DRAM.
    for _op, addr, stream in streaming_load(64 * 1024, base=1 << 34,
                                            stream=9):
        wa.load(addr, stream=stream)
    total_wa = (wa.dram_reads - 64 * 1024 * 8 // 64 + wa.dram_writes) * 64
    total_nt = (nt.dram_reads + nt.dram_writes) * 64
    assert 1 - total_nt / total_wa == pytest.approx(0.25, abs=0.02)


def test_blocked_reuse_cuts_traffic(benchmark):
    """Temporal blocking in miniature: sweeping a cache-sized block R
    times costs ~1/R of the streaming traffic per access."""
    from repro.workloads.kernels import blocked_sum
    repeats = 4
    blocked = benchmark.pedantic(
        execute, args=(blocked_sum(N, 16 * 1024, repeats), "batched"),
        iterations=1, rounds=1)
    streamed = execute(streaming_load(N), "batched")
    blocked_per_access = blocked.dram_reads / (N * repeats // 1)
    stream_per_access = streamed.dram_reads / N
    assert blocked_per_access == pytest.approx(stream_per_access / repeats,
                                               rel=0.1)


def test_batched_engine_matches_scalar_traffic():
    """The two engines agree exactly on every externally observable
    count at benchmark sizes (the per-kernel differential tests live
    in tests/hw/test_batch.py)."""
    scalar = execute(streaming_triad(N), "scalar")
    batched = execute(streaming_triad(N), "batched")
    assert batched.channels() == scalar.channels()
    assert (batched.dram_reads, batched.dram_writes) \
        == (scalar.dram_reads, scalar.dram_writes)


def test_batched_replay_speedup(benchmark):
    """Performance contract of the batch engine: replaying the captured
    triad trace (the trace cache pays generation once) is at least 3×
    faster than the scalar per-access path at the default sizes."""
    captured = trace_arrays("streaming_triad", N)

    def scalar_pass():
        run(hierarchy("scalar"), streaming_triad(N), "scalar")

    def batched_pass():
        hierarchy("batched").replay(captured)

    def best_of(fn, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    scalar_t = best_of(scalar_pass)
    benchmark.pedantic(batched_pass, iterations=1, rounds=5)
    batched_t = best_of(batched_pass)
    speedup = scalar_t / batched_t
    assert speedup >= 3.0, (
        f"batched replay only {speedup:.2f}x faster than scalar "
        f"({scalar_t * 1e3:.1f}ms vs {batched_t * 1e3:.1f}ms)")
