"""Ablation: multiplexing accuracy vs measurement length.

DESIGN.md design-decision 4: "Multiplexing trades accuracy for
coverage."  The paper warns that with multiplexed event sets
"short-running measurements will then carry large statistical errors."
This bench quantifies that: a bursty workload is measured with an
increasing number of round-robin rotations; the extrapolation error of
the burst event shrinks as the run gets longer (more rotations), and a
steady workload always extrapolates exactly.
"""

import pytest

from repro.core.perfctr import LikwidPerfCtr
from repro.core.perfctr.multiplex import measure_multiplexed
from repro.hw.arch import create_machine
from repro.hw.events import Channel

SETS = ["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0", "L1D_REPL:PMC0"]
TRUE_TOTAL = 12_000.0


def bursty_runner(machine, burst_slices: int, total_slices: int):
    """All flops fire in the first *burst_slices* slices."""
    state = {"slice": 0}
    per_burst = TRUE_TOTAL / burst_slices

    def run(_fraction):
        state["slice"] += 1
        flops = per_burst if state["slice"] <= burst_slices else 0.0
        machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: flops,
                                  Channel.L1D_REPLACEMENT: 100.0}})
    return run


def multiplex_error(rotations: int) -> float:
    machine = create_machine("core2")
    perfctr = LikwidPerfCtr(machine)
    run = bursty_runner(machine, burst_slices=max(1, rotations // 4),
                        total_slices=rotations)
    result = measure_multiplexed(perfctr, [0], SETS, run,
                                 rotations=rotations)
    estimate = result.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")
    return abs(estimate - TRUE_TOTAL) / TRUE_TOTAL


def test_error_shrinks_with_run_length(benchmark):
    errors = benchmark.pedantic(
        lambda: [multiplex_error(r) for r in (4, 16, 64, 256)],
        iterations=1, rounds=1)
    # Short runs: the burst aliases badly with the rotation schedule.
    assert errors[0] > 0.2
    # Long runs sample the burst representatively.
    assert errors[-1] < 0.05
    assert errors[-1] < errors[0]


def test_steady_workload_exact_at_any_length(benchmark):
    def run_all():
        out = []
        for rotations in (4, 32):
            machine = create_machine("core2")
            perfctr = LikwidPerfCtr(machine)

            def run(_fraction):
                machine.apply_counts(
                    {0: {Channel.FLOPS_PACKED_DP: 100.0,
                         Channel.L1D_REPLACEMENT: 50.0}})
            result = measure_multiplexed(perfctr, [0], SETS, run,
                                         rotations=rotations)
            out.append((rotations,
                        result.event(
                            0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE")))
        return out

    for rotations, estimate in benchmark.pedantic(run_all,
                                                  iterations=1, rounds=1):
        assert estimate == pytest.approx(rotations * 100.0, rel=1e-6)


def test_coverage_vs_counters(benchmark):
    """Multiplexing measures more events than the 2 Core 2 counters
    hold — the feature's raison d'etre."""
    machine = create_machine("core2")
    perfctr = LikwidPerfCtr(machine)
    sets = ["SIMD_COMP_INST_RETIRED_PACKED_DOUBLE:PMC0,L1D_REPL:PMC1",
            "BR_INST_RETIRED_ANY:PMC0,DTLB_MISSES_ANY:PMC1"]

    def run(_fraction):
        machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 10.0,
                                  Channel.L1D_REPLACEMENT: 20.0,
                                  Channel.BRANCHES: 30.0,
                                  Channel.DTLB_MISSES: 40.0}})

    result = benchmark.pedantic(
        measure_multiplexed, args=(perfctr, [0], sets, run),
        kwargs=dict(rotations=8), iterations=1, rounds=1)
    # Four events measured with two counters; steady load -> exact.
    assert result.event(0, "SIMD_COMP_INST_RETIRED_PACKED_DOUBLE") == \
        pytest.approx(80.0)
    assert result.event(0, "DTLB_MISSES_ANY") == pytest.approx(320.0)
