"""Benchmark: crash safety must stay lightweight (ISSUE 5 acceptance).

The write-ahead journal prices every state-mutating MSR write with one
in-memory record append (struct pack + CRC32).  Reads — the bulk of a
measurement — are untouched.  Scaled by the fixed number of journaled
writes in a wrapper measurement, journaling must add under 5% to a
full no-fault wrap; with ``--no-journal`` the path degrades to one
``journal is None`` check and must price as noise (<1%).
"""

import contextlib
import gc
import time

from repro import trace
from repro.core.perfctr import LikwidPerfCtr
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.msr_driver import MsrDriver


@contextlib.contextmanager
def no_gc():
    """The journaled path allocates more per call than the raw path,
    so collector pauses would land disproportionately on one side of
    the differential; time both with the collector off."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timed(fn, repeats, rounds=5):
    """Best-of-N per-call time: noise only ever slows a round down."""
    best = float("inf")
    with no_gc():
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, time.perf_counter() - start)
    return best / repeats


def timed_pair(fa, fb, repeats, rounds=7):
    """Best-of per-call times for two functions with *interleaved*
    rounds, so a slow window of the host machine hits both sides
    instead of biasing the differential."""
    best_a = best_b = float("inf")
    with no_gc():
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(repeats):
                fa()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(repeats):
                fb()
            best_b = min(best_b, time.perf_counter() - start)
    return best_a / repeats, best_b / repeats


def run_wrap(machine, driver):
    perfctr = LikwidPerfCtr(machine, driver)
    return perfctr.wrap(
        "0-3", "FLOPS_DP",
        lambda: machine.apply_counts(
            {cpu: {Channel.FLOPS_PACKED_DP: 1000.0} for cpu in range(4)}))


def journaled_writes_per_wrap():
    """How many writes one 4-core FLOPS_DP wrap journals."""
    machine = create_machine("nehalem_ep")
    driver = MsrDriver(machine)
    before = trace.metrics().value("journal.records")
    run_wrap(machine, driver)
    return trace.metrics().value("journal.records") - before


def test_journaling_overhead_below_5pct(benchmark):
    machine = create_machine("nehalem_ep")
    journaled = MsrDriver(machine)                    # the default
    plain = MsrDriver(machine, journaling=False)      # --no-journal
    addr = machine.spec.pmu.pmc_address(0)
    mj = journaled.open(0)
    mp = plain.open(0)
    journaled.begin_epoch()

    # Toggle between two values so the journal's consecutive-duplicate
    # filter never short-circuits the append being priced.
    def journaled_site():
        mj.journaled_write(addr, 1)
        mj.journaled_write(addr, 0)

    def raw_site():
        mp.write_msr(addr, 1)
        mp.write_msr(addr, 0)

    def compare():
        per_journaled, per_raw = timed_pair(journaled_site, raw_site,
                                            1000)
        writes = journaled_writes_per_wrap()
        wrap_machine = create_machine("nehalem_ep")
        wrap_driver = MsrDriver(wrap_machine)
        per_wrap = timed(lambda: run_wrap(wrap_machine, wrap_driver), 20)
        added = max(0.0, per_journaled / 2 - per_raw / 2) * writes
        return added, per_wrap, writes

    added, per_wrap, writes = benchmark.pedantic(compare,
                                                 iterations=1, rounds=1)
    assert writes > 10          # the wrap really journals its writes
    assert added <= 0.05 * per_wrap, (
        f"journaling adds {added / per_wrap * 100:.1f}% (>5%) to a "
        f"no-fault wrapper measurement ({writes} journaled writes, "
        f"{added * 1e6:.1f}us of {per_wrap * 1e3:.2f}ms)")


def test_no_journal_mode_prices_as_noise(benchmark):
    """--no-journal reduces journaled_write to write_msr plus one
    attribute check; the residue must stay under 1% of a wrap."""
    machine = create_machine("nehalem_ep")
    plain = MsrDriver(machine, journaling=False)
    addr = machine.spec.pmu.pmc_address(0)
    mp = plain.open(0)

    def through_api():
        mp.journaled_write(addr, 1)
        mp.journaled_write(addr, 0)

    def raw():
        mp.write_msr(addr, 1)
        mp.write_msr(addr, 0)

    def compare():
        per_api, per_raw = timed_pair(through_api, raw, 1000)
        writes = journaled_writes_per_wrap()
        wrap_machine = create_machine("nehalem_ep")
        wrap_driver = MsrDriver(wrap_machine, journaling=False)
        per_wrap = timed(lambda: run_wrap(wrap_machine, wrap_driver), 20)
        return max(0.0, per_api / 2 - per_raw / 2) * writes, per_wrap

    added, per_wrap = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert added <= 0.01 * per_wrap, (
        f"--no-journal residue is {added / per_wrap * 100:.2f}% (>1%) "
        f"of a wrapper measurement")


def test_clean_wrap_leaves_empty_journal(benchmark):
    """Journaling a clean run must not accumulate state: the journal
    retires at session close, so repeated measurements stay O(1) in
    memory."""
    machine = create_machine("nehalem_ep")
    driver = MsrDriver(machine)

    def wraps():
        for _ in range(5):
            run_wrap(machine, driver)
        return driver.journal.record_count

    count = benchmark.pedantic(wraps, iterations=1, rounds=1)
    assert count == 0
