"""Benchmark: Table II — uncore measurement of temporal blocking.

The full stack in one harness: the three Jacobi variants run pinned to
one Nehalem EP socket while likwid-perfctr counts the uncore events
UNC_L3_LINES_IN_ANY / UNC_L3_LINES_OUT_ANY through socket locks.
Paper targets (one socket, identical update counts):

    =====================  ========  ===========  =========
    .                      threaded  threaded-NT  blocked
    UNC_L3_LINES_IN_ANY    5.91e8    3.44e8       1.30e8
    UNC_L3_LINES_OUT_ANY   5.87e8    3.43e8       1.29e8
    data volume [GB]       75.39     43.97        16.57
    MLUPS                  784       1032         1331
    =====================  ========  ===========  =========
"""

import pytest

from repro.experiments import table2_nt_saving_exact, table2_uncore

PAPER = {
    "threaded": dict(lines_in=5.91e8, lines_out=5.87e8,
                     volume=75.39, mlups=784),
    "threaded_nt": dict(lines_in=3.44e8, lines_out=3.43e8,
                        volume=43.97, mlups=1032),
    "wavefront": dict(lines_in=1.30e8, lines_out=1.29e8,
                      volume=16.57, mlups=1331),
}


@pytest.fixture(scope="module")
def rows():
    return {r.variant: r for r in table2_uncore()}


def test_table2_regeneration(benchmark):
    result = benchmark.pedantic(table2_uncore, iterations=1, rounds=1)
    assert {r.variant for r in result} == set(PAPER)


@pytest.mark.parametrize("variant", sorted(PAPER))
def test_absolute_values_within_3pct(rows, variant, benchmark):
    benchmark(lambda: rows[variant])
    row = rows[variant]
    target = PAPER[variant]
    assert row.l3_lines_in == pytest.approx(target["lines_in"], rel=0.03)
    assert row.l3_lines_out == pytest.approx(target["lines_out"], rel=0.03)
    assert row.data_volume_gb == pytest.approx(target["volume"], rel=0.03)
    assert row.mlups == pytest.approx(target["mlups"], rel=0.03)


def test_nt_stores_save_one_third(rows, benchmark):
    """Paper: 'nontemporal stores save about 1/3 of the data transfer
    volume compared to the code with temporal stores'."""
    benchmark(lambda: rows["threaded_nt"])
    # In DRAM terms the saving is exactly the write-allocate stream
    # (24 -> 16 B per update = 1/3); in the table's L3 line-count
    # volume it shows up as 75.39 -> 43.97 GB (a 42% drop).
    saving = 1 - rows["threaded_nt"].data_volume_gb / \
        rows["threaded"].data_volume_gb
    assert saving == pytest.approx(1 - 43.97 / 75.39, abs=0.02)


@pytest.mark.parametrize("engine", ["batched", "scalar"])
def test_nt_saving_exact_substrate(benchmark, engine):
    """The same 1/3 saving, measured on the exact cache simulator (in
    DRAM terms: 24 B/elem write-allocate vs 16 B/elem nontemporal).
    Both trace engines agree to the bit."""
    saving = benchmark.pedantic(table2_nt_saving_exact,
                                kwargs={"engine": engine},
                                iterations=1, rounds=1)
    assert saving == pytest.approx(1 / 3, abs=1e-12)


def test_blocking_reduces_traffic_4_5x(rows, benchmark):
    benchmark(lambda: rows["wavefront"])
    ratio = rows["threaded"].data_volume_gb / rows["wavefront"].data_volume_gb
    assert ratio == pytest.approx(4.5, rel=0.05)


def test_performance_boost_subproportional(rows, benchmark):
    """The 4.5x traffic cut buys only ~1.7x performance (the paper's
    two-reason discussion: single-stream bandwidth + small L3/mem gap)."""
    benchmark(lambda: rows["threaded"])
    speedup = rows["wavefront"].mlups / rows["threaded"].mlups
    assert 1.5 < speedup < 2.0
