"""Benchmark: the perf backend's rdpmc read path (ISSUE 6 satellite e).

``perf_backend_read`` prices one full ``read_batch`` of a programmed
4-event context — the hot readout the timeline/daemon modes sit in a
loop on.  An rdpmc-style read bypasses the device node entirely
(:meth:`MSRSpace.peek`), so it must stay cheaper than the msr
backend's device-path readout of the same assignments; the cross-check
is asserted here and the absolute median is recorded into
``BENCH_baseline.json`` by ``tools/bench_gate.py``.
"""

from repro.core.perfctr.counters import CounterMap, validate_assignments
from repro.core.perfctr.events import parse_event_string
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.access import open_backend

EVENTS = ("FP_COMP_OPS_EXE_SSE_FP_PACKED:PMC0,"
          "FP_COMP_OPS_EXE_SSE_FP_SCALAR:PMC1,"
          "L1D_REPL:PMC2,DTLB_MISSES_ANY:PMC3")


def programmed_backend(mode):
    machine = create_machine("nehalem_ep")
    backend = open_backend(mode, machine)
    counters = CounterMap(machine.spec)
    backend.attach(counters)
    assignments = validate_assignments(
        machine.spec.events, counters, parse_event_string(EVENTS))
    backend.program_core(0, assignments)
    backend.start_core(0, assignments)
    machine.apply_counts({0: {Channel.FLOPS_PACKED_DP: 1000.0,
                              Channel.FLOPS_SCALAR_DP: 500.0}},
                         elapsed_seconds=0.1)
    return backend, assignments


def test_perf_backend_read(benchmark):
    backend, assignments = programmed_backend("perf")
    values = benchmark(lambda: backend.read_batch(0, assignments))
    assert values["PMC0"] == 1000
    assert values["PMC1"] == 500


def test_rdpmc_read_beats_device_read(benchmark):
    """The differential the backend exists for: userspace reads must
    not price like device I/O."""
    import time

    perf, perf_assignments = programmed_backend("perf")
    msr, msr_assignments = programmed_backend("msr")

    def timed(fn, repeats=2000, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, time.perf_counter() - start)
        return best / repeats

    def compare():
        per_perf = timed(lambda: perf.read_batch(0, perf_assignments))
        per_msr = timed(lambda: msr.read_batch(0, msr_assignments))
        return per_perf, per_msr

    per_perf, per_msr = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert per_perf < per_msr, (
        f"rdpmc read ({per_perf * 1e6:.2f}us) should beat the device "
        f"read path ({per_msr * 1e6:.2f}us)")
