"""Ablation: wavefront group layouts (paper reference [8]).

Figure 11 studies one group layout (1x4) and its mis-pinned variant;
reference [8] shows the layout space matters: independent groups per
socket use both memory controllers and both shared caches.  This bench
sweeps the layouts at the Table II operating point (N = 480) and
asserts their ordering:

    2 x (1x2), one group per socket   >   1x4, one socket
    1x4, one socket                   >   threaded-NT baseline
    threaded-NT baseline              >   1x4 split across sockets
"""

import pytest

from repro.hw.arch import create_machine
from repro.oskern.scheduler import OSKernel
from repro.workloads.jacobi import JacobiConfig, run_jacobi

N = 480
SWEEPS = 6

LAYOUTS = {
    # label: (variant, groups, pin)
    "2x(1x2) both sockets": ("wavefront", 2, [0, 1, 4, 5]),
    "1x4 one socket": ("wavefront", 1, [0, 1, 2, 3]),
    "threaded-NT baseline": ("threaded_nt", 1, [0, 1, 2, 3]),
    "1x4 split (hazard)": ("wavefront", 1, [0, 1, 4, 5]),
}


@pytest.fixture(scope="module")
def mlups():
    machine = create_machine("nehalem_ep")
    kernel = OSKernel(machine, seed=9)
    out = {}
    for label, (variant, groups, pin) in LAYOUTS.items():
        cfg = JacobiConfig(variant, N, SWEEPS, 4, groups=groups)
        out[label] = run_jacobi(machine, kernel, cfg, pin_cpus=pin).mlups
    return out


def test_layout_sweep(benchmark):
    def sweep():
        machine = create_machine("nehalem_ep")
        kernel = OSKernel(machine, seed=9)
        return {label: run_jacobi(
            machine, kernel,
            JacobiConfig(v, N, SWEEPS, 4, groups=g), pin_cpus=p).mlups
            for label, (v, g, p) in LAYOUTS.items()}
    values = benchmark.pedantic(sweep, iterations=1, rounds=1)
    assert set(values) == set(LAYOUTS)


def test_per_socket_groups_win(mlups, benchmark):
    benchmark(lambda: mlups["2x(1x2) both sockets"])
    assert mlups["2x(1x2) both sockets"] > 1.3 * mlups["1x4 one socket"]


def test_full_ordering(mlups, benchmark):
    benchmark(lambda: dict(mlups))
    ordered = ["2x(1x2) both sockets", "1x4 one socket",
               "threaded-NT baseline", "1x4 split (hazard)"]
    values = [mlups[label] for label in ordered]
    assert values == sorted(values, reverse=True), mlups


def test_split_costs_factor_two(mlups, benchmark):
    benchmark(lambda: mlups["1x4 split (hazard)"])
    assert mlups["1x4 split (hazard)"] < 0.65 * mlups["1x4 one socket"]
