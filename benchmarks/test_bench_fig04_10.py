"""Benchmarks: Figures 4-10 — STREAM triad pinning studies.

Each test regenerates one figure's box-plot series (reduced sample
counts keep the harness fast; `repro-bench fig N --samples 100`
reproduces the paper's full 100-sample runs) and asserts the shape
facts the paper draws from it.
"""

import statistics

import pytest

from repro.experiments import stream_figure

COUNTS = [1, 2, 4, 8, 12, 16, 24]
COUNTS_AMD = [1, 2, 4, 6, 8, 12]


def med(series, n):
    return statistics.median(series.samples[n])


def test_fig4_icc_unpinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(4,),
        kwargs=dict(samples=40, thread_counts=COUNTS),
        iterations=1, rounds=1)
    # Large variance, especially at low thread counts.
    assert series.spread(2) > 5000
    assert series.spread(4) > 5000
    # Median grows with threads but stays below the pinned plateau.
    assert med(series, 1) < med(series, 12)
    assert med(series, 12) < 42000


def test_fig5_icc_pinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(5,),
        kwargs=dict(thread_counts=COUNTS), iterations=1, rounds=1)
    # "The pinned case consistently shows high performance."
    for n in COUNTS:
        assert series.spread(n) < 200
    assert med(series, 1) == pytest.approx(9500, rel=0.02)
    assert med(series, 2) == pytest.approx(19000, rel=0.02)
    assert med(series, 12) == pytest.approx(42000, rel=0.02)
    assert med(series, 24) == pytest.approx(42000, rel=0.02)


def test_fig6_kmp_scatter(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(6,),
        kwargs=dict(thread_counts=COUNTS), iterations=1, rounds=1)
    # "This option provides the same high performance as with
    # likwid-pin, at all thread counts."
    pinned = stream_figure(5, thread_counts=COUNTS)
    for n in COUNTS:
        assert med(series, n) == pytest.approx(med(pinned, n), rel=0.02)


def test_fig7_gcc_unpinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(7,),
        kwargs=dict(samples=40, thread_counts=COUNTS),
        iterations=1, rounds=1)
    icc = stream_figure(4, samples=40, thread_counts=COUNTS)
    # gcc's saturated bandwidth sits visibly below icc's.
    assert max(series.samples[24]) < max(icc.samples[24])
    assert series.spread(4) > 3000


def test_fig8_gcc_pinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(8,),
        kwargs=dict(thread_counts=COUNTS), iterations=1, rounds=1)
    # Write-allocate costs ~25% of reported bandwidth at saturation.
    assert med(series, 12) == pytest.approx(31500, rel=0.03)
    assert med(series, 24) == pytest.approx(31500, rel=0.03)
    for n in COUNTS:
        assert series.spread(n) < 200


def test_fig9_istanbul_unpinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(9,),
        kwargs=dict(samples=40, thread_counts=COUNTS_AMD),
        iterations=1, rounds=1)
    # "no significant difference ... between the distribution for
    # smaller or larger thread counts" — spreads comparable.
    spreads = [series.spread(n) for n in (2, 4, 6)]
    assert min(spreads) > 1500


def test_fig10_istanbul_pinned(benchmark):
    series = benchmark.pedantic(
        stream_figure, args=(10,),
        kwargs=dict(thread_counts=COUNTS_AMD), iterations=1, rounds=1)
    # "good, stable results for all thread counts"
    for n in COUNTS_AMD:
        assert series.spread(n) < 200
    assert med(series, 12) == pytest.approx(25000, rel=0.03)
    assert med(series, 2) == pytest.approx(11600, rel=0.03)


def test_seed_robustness_of_unpinned_distributions(benchmark):
    """The unpinned variance claims are statistical: medians and spreads
    must be stable across scheduler seeds, not artefacts of one RNG
    stream."""
    def medians_for(seed):
        series = stream_figure(4, samples=40, thread_counts=[2, 8],
                               seed=seed)
        return {n: statistics.median(series.samples[n])
                for n in (2, 8)}, {n: series.spread(n) for n in (2, 8)}

    results = benchmark.pedantic(
        lambda: [medians_for(s) for s in (1, 20100630, 999)],
        iterations=1, rounds=1)
    for n in (2, 8):
        medians = [r[0][n] for r in results]
        spreads = [r[1][n] for r in results]
        assert max(medians) < 1.35 * min(medians)
        assert all(s > 4000 for s in spreads)
