"""Benchmark: the agent's ingest and window-loop hot paths (ISSUE 8).

Two medians recorded into ``BENCH_baseline.json`` and gated by
``tools/bench_gate.py`` (>25% regression fails CI):

``test_agent_ingest_throughput``
    One batch pushed through a back-pressured lane into the fleet
    aggregator — the per-window cost every node pays at the shared
    pipeline, downsampling included.

``test_agent_window_loop``
    One full monitoring window (session program/start/read/teardown,
    synthetic load, normalization, dispatch) — the agent's steady-state
    loop body, priced end to end.
"""

from repro.agent import (AgentConfig, Aggregator, AggregatorSink,
                         AgentSample, MonitorAgent, SampleBatch,
                         SinkLane, SyntheticLoad)
from repro.hw.arch import create_machine
from repro.oskern.access import open_backend

BATCH_SAMPLES = 64
INGEST_CAP = 40          # forces downsampling on every push


def make_batch(window: int) -> SampleBatch:
    samples = tuple(
        AgentSample("bench0", "MEM", window, 0.1 * (window + 1), "cpu",
                    i % 4, f"metric{i % 8}", float(i),
                    seq=window * BATCH_SAMPLES + i)
        for i in range(BATCH_SAMPLES))
    return SampleBatch("bench0", "MEM", window, 0.1 * (window + 1),
                       0.1, samples, seq=window)


def test_agent_ingest_throughput(benchmark):
    aggregator = Aggregator()
    lane = SinkLane(AggregatorSink(aggregator, max_batch=INGEST_CAP),
                    seed=7)
    batch = make_batch(0)

    benchmark(lambda: lane.push(batch))

    acct = lane.accounting
    assert acct.consistent
    assert acct.dropped > 0                  # back-pressure was live
    assert aggregator.total_samples == acct.emitted


def test_agent_window_loop(benchmark):
    machine = create_machine("nehalem_ep")
    backend = open_backend("msr", machine)
    config = AgentConfig(groups=("FLOPS_DP",), cpus=(0, 1),
                         window=0.01, node="bench0")
    agent = MonitorAgent(machine, backend, config,
                         workload=SyntheticLoad(machine, (0, 1)))
    counter = iter(range(1_000_000))

    batch = benchmark(lambda: agent.measure_window("FLOPS_DP",
                                                   next(counter)))

    assert len(batch.samples) > 0
    assert any(s.scope == "socket" for s in batch.samples)
