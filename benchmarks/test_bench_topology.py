"""Benchmark: Figure 1 and the §II.B topology listings.

Regenerates the topology reports for the paper's machines and times
the CPUID decode path (the tool's startup cost, which the paper's
lightweight-tooling argument hinges on).
"""

from repro.core.topology import probe_topology, render_topology
from repro.core.topology_ascii import render_ascii
from repro.experiments import figure1_topology


def test_fig1_nehalem_diagram(benchmark):
    text = benchmark(figure1_topology)
    assert "Hardware Thread Topology" in text
    assert "Sockets:\t\t2" in text
    assert "8 MB" in text


def test_westmere_listing(benchmark, westmere):
    topology = benchmark(probe_topology, westmere)
    # The paper listing's load-bearing facts.
    assert topology.socket_members(0) == \
        [0, 12, 1, 13, 2, 14, 3, 15, 4, 16, 5, 17]
    l3 = next(c for c in topology.caches if c.level == 3)
    assert l3.sets == 12288 and not l3.inclusive
    text = render_topology(topology)
    assert "Non Inclusive cache" in text


def test_ascii_art_render(benchmark, westmere):
    topology = probe_topology(westmere)
    art = benchmark(render_ascii, topology)
    assert art.count("12 MB") == 2


def test_istanbul_amd_decode(benchmark, istanbul):
    topology = benchmark(probe_topology, istanbul)
    assert topology.num_sockets == 2
    assert topology.cores_per_socket == 6
    assert topology.threads_per_core == 1
