"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artefact (DESIGN.md per-experiment
index) and asserts its *shape* — who wins, by what factor — while
pytest-benchmark times the regeneration itself.
"""

import pytest

from repro.hw.arch import create_machine


@pytest.fixture
def westmere():
    return create_machine("westmere_ep")


@pytest.fixture
def nehalem():
    return create_machine("nehalem_ep")


@pytest.fixture
def istanbul():
    return create_machine("amd_istanbul")
