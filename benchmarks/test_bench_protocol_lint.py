"""Benchmark: the LK6xx protocol pass must stay pre-commit fast
(ISSUE 7 satellite).

The CFG/dataflow analysis runs over every function in the measurement
runtime (oskern + perfctr + features + CLI) on each `repro-lint --all`
and in the CI fast-fail job, so its wall clock is a product surface:
the budget is a full cold tree scan in **under 5 seconds**.  The
per-file (path, mtime) cache is cleared each round — warm runs are
effectively free and would make the number meaningless.
"""

from repro.analysis import protocol

BUDGET_SECONDS = 5.0


def cold_full_tree_scan():
    protocol.clear_cache()
    return protocol.lint_protocol()


def test_protocol_lint_full_tree(benchmark):
    diags = benchmark(cold_full_tree_scan)
    assert diags == []      # the self-check, timed
    assert benchmark.stats.stats.median < BUDGET_SECONDS
