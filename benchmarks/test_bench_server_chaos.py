"""Benchmark: chaos hardening must not tax the happy path (ISSUE 10).

Two medians recorded into ``BENCH_baseline.json`` and gated by
``tools/bench_gate.py`` (>25% regression fails CI):

``test_server_chaotic_load_with_kill``
    The headline robustness scenario priced end to end: a load-test
    mix under full network chaos plus one mid-run server kill + WAL
    recovery.  Tracks the cost of the whole fault-handling machinery
    (retry loops, dedup window, journaling, replay).

``test_retry_wrapper_overhead_below_5pct``
    With chaos *disabled*, the retry/idempotency wrapper around one
    protocol round trip must price within 5% of a bare attempt — the
    resilient client may not slow down the fleet that never faults.
"""

import asyncio
import contextlib
import gc
import time

from repro.agent.fleet import NodeSpec
from repro.server.client import ServerClient, _CallClock
from repro.server.loadtest import LoadTestConfig, run_load_test
from repro.server.protocol import ProtocolServer
from repro.server.server import ReproServer

CHAOS = ("refuse=0.05,drop_request=0.05,drop_reply=0.05,"
         "torn_reply=0.05,duplicate=0.1")


@contextlib.contextmanager
def no_gc():
    """Collector pauses would land disproportionately on one side of
    the differential; time both sides with the collector off."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


async def timed_pair(fa, fb, repeats, rounds=5):
    """Best-of per-call times for two coroutine factories with
    *interleaved* rounds, so a slow window of the host machine hits
    both sides instead of biasing the differential."""
    best_a = best_b = float("inf")
    with no_gc():
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(repeats):
                await fa()
            best_a = min(best_a, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(repeats):
                await fb()
            best_b = min(best_b, time.perf_counter() - start)
    return best_a / repeats, best_b / repeats


def test_server_chaotic_load_with_kill(benchmark):
    config = LoadTestConfig(
        sessions=300, clients=30, nodes=4, tenants=2, seed=42,
        chaos=CHAOS, kill_after=100)

    report = benchmark.pedantic(lambda: run_load_test(config),
                                rounds=3, iterations=1)
    assert report.accounting_errors() == []
    assert report.server_restarts == 1
    assert report.retries > 0
    assert report.chaos


def test_retry_wrapper_overhead_below_5pct(benchmark):
    async def compare():
        server = ReproServer.from_specs(
            [NodeSpec(name="node000", arch="westmere_ep", seed=0)],
            lease_limit=10.0)
        proto = ProtocolServer(server)
        host, port = await proto.start()
        client = ServerClient(host, port)       # default RetryPolicy
        await client.connect()
        doc = {"op": "ping"}
        try:
            per_wrapped, per_bare = await timed_pair(
                lambda: client.call(dict(doc)),
                lambda: client._attempt(dict(doc), _CallClock(None)),
                repeats=400)
        finally:
            await client.close()
            await proto.close()
        return per_wrapped, per_bare

    per_wrapped, per_bare = benchmark.pedantic(
        lambda: asyncio.run(compare()), iterations=1, rounds=1)
    added = max(0.0, per_wrapped - per_bare)
    assert added <= 0.05 * per_bare, (
        f"retry wrapper adds {added / per_bare * 100:.1f}% (>5%) to a "
        f"chaos-free round trip ({per_bare * 1e6:.1f}us bare, "
        f"{per_wrapped * 1e6:.1f}us wrapped)")
