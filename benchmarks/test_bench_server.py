"""Benchmark: the concurrent-session server's hot paths (ISSUE 9).

Two medians recorded into ``BENCH_baseline.json`` and gated by
``tools/bench_gate.py`` (>25% regression fails CI):

``test_server_submit_roundtrip``
    One submit→grant→measure→complete cycle through the synchronous
    scheduler core — the per-session floor every client pays (driver
    open, epoch, lease, session program/read/teardown, accounting).

``test_server_load_1k_sessions``
    A full 1000-session load-test mix through the whole stack —
    asyncio multiplexer, TCP protocol, concurrent clients, fairness
    queue, deadline expiry and preemption — priced end to end.
"""

from repro.server.loadtest import LoadTestConfig, run_load_test
from repro.server.scheduler import NodeScheduler, SessionRequest


def test_server_submit_roundtrip(benchmark):
    sched = NodeScheduler("bench0", "westmere_ep", lease_limit=10.0)
    seeds = iter(range(10_000_000))

    def roundtrip():
        sess = sched.submit(SessionRequest(
            "bench0", (0, 1), "FLOPS_DP", windows=1, window=0.05,
            seed=next(seeds)))
        sched.run_to_idle()
        return sess

    sess = benchmark(roundtrip)
    assert sess.state.value == "completed"
    acc = sched.accounting()
    assert acc["completed"] == acc["submitted"]
    assert acc["pending"] == 0


def test_server_load_1k_sessions(benchmark):
    config = LoadTestConfig(
        sessions=1000, clients=100, nodes=8, tenants=4, seed=42,
        deadline_fraction=0.1, long_fraction=0.04)

    report = benchmark.pedantic(lambda: run_load_test(config),
                                rounds=3, iterations=1)
    assert report.accounting_errors() == []
    assert report.counts["completed"] > 800
