"""Benchmark: disabled tracing must be free (ISSUE 4 acceptance).

The observability layer's contract is a single-attribute-check no-op
path: with ``repro.trace`` disabled (the default), every instrumented
site either takes an ``if not tracer.enabled`` branch or receives the
shared null span.  This bench prices that path the same way the retry
plumbing bench does — per-site cost measured directly, scaled by a
deliberately generous site count, compared against the PR-1 ablation
workload (batched triad replay, N=16384) — and fails above 2%.
"""

import time

from repro import trace
from repro.hw.batch import BatchHierarchy
from repro.hw.prefetch import PrefetcherConfig
from repro.hw.spec import CacheSpec
from repro.trace.tracer import _NULL_SPAN
from repro.workloads.trace_cache import trace_arrays

N = 16384  # the PR-1 ablation workload size

SPECS = [
    CacheSpec(1, "Data cache", 32 * 1024, 8, 64),
    CacheSpec(2, "Unified cache", 256 * 1024, 8, 64),
]


def best_of(fn, repeats, rounds=5):
    """Best-of-N per-call time: noise only ever slows a round down."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / repeats


def test_disabled_tracing_overhead_below_2pct(benchmark):
    assert trace.TRACER.enabled is False      # default state — the
    # bench prices exactly what every untraced user pays.
    captured = trace_arrays("streaming_triad", N)
    hierarchy = BatchHierarchy(list(SPECS), PrefetcherConfig.all_off())

    def replay():
        hierarchy.replay(captured)

    tracer = trace.TRACER

    def null_span_site():
        # The span-granularity no-op: helper call + null context
        # manager enter/exit (what runner/perfctr/batch sites pay).
        with trace.span("bench.noop"):
            pass

    def guard_site():
        # The hot-path no-op: a bare attribute check (what the msr
        # per-op and cache-probe sites pay).
        if tracer.enabled:
            raise AssertionError

    def compare():
        per_span = best_of(null_span_site, 20_000)
        per_guard = best_of(guard_site, 20_000)
        per_replay = best_of(replay, 1)
        # Generous accounting: a replay crosses ~4 span-bearing sites
        # (run_trace, batch.replay, encode passthrough, cache lookup);
        # budget 16 spans + 64 bare guards per replay.
        added = 16 * per_span + 64 * per_guard
        return added, per_replay

    added, per_replay = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert added <= 0.02 * per_replay, (
        f"disabled tracing adds {added / per_replay * 100:.2f}% (>2%) "
        f"to the ablation replay ({added * 1e9:.0f}ns of "
        f"{per_replay * 1e6:.0f}us)")


def test_disabled_span_is_shared_singleton(benchmark):
    """The no-op path allocates nothing: every disabled span is the
    same object, so the site cost is call + identity, no GC traffic."""
    def grab():
        return trace.span("a"), trace.span("b", key=1)

    a, b = benchmark.pedantic(grab, iterations=1, rounds=1)
    assert a is _NULL_SPAN
    assert b is _NULL_SPAN


def test_disabled_tracing_records_nothing(benchmark):
    """After a full replay with tracing off, the global tracer holds
    no spans and no replay metrics — nothing accumulates silently."""
    captured = trace_arrays("streaming_triad", N)
    hierarchy = BatchHierarchy(list(SPECS), PrefetcherConfig.all_off())
    before_records = len(trace.records())
    before_replays = trace.metrics().value("batch.replay.calls")
    benchmark.pedantic(lambda: hierarchy.replay(captured),
                       iterations=1, rounds=1)
    assert len(trace.records()) == before_records
    assert trace.metrics().value("batch.replay.calls") == before_replays
