"""Benchmark: Figure 11 — topology-aware stencil vs problem size.

Regenerates the three MLUPS-vs-size curves on the Nehalem EP node and
asserts the paper's qualitative claims: correct pinning of the
wavefront group to one socket's shared L3 wins everywhere; splitting
the group across sockets reverses the optimisation (≈2x loss) and
falls below the nontemporal threaded baseline.
"""

import pytest

from repro.experiments import figure11_jacobi_sweep

SIZES = (50, 100, 200, 300, 400, 480, 500)


@pytest.fixture(scope="module")
def curves():
    return figure11_jacobi_sweep(sizes=SIZES)


def test_fig11_regeneration(benchmark):
    result = benchmark.pedantic(figure11_jacobi_sweep,
                                kwargs=dict(sizes=(100, 300, 480)),
                                iterations=1, rounds=1)
    assert set(result) == {"wavefront 1x4",
                           "wavefront 1x4 (2 per socket)", "threaded"}


def test_wavefront_dominates_baseline(curves, benchmark):
    benchmark(lambda: dict(curves["wavefront 1x4"]))
    for (n, w), (_n, b) in zip(curves["wavefront 1x4"],
                               curves["threaded"]):
        assert w > b, f"N={n}: wavefront {w:.0f} <= baseline {b:.0f}"


def test_wrong_pinning_reversal(curves, benchmark):
    benchmark(lambda: dict(curves["wavefront 1x4 (2 per socket)"]))
    for (n, w), (_n, s) in zip(curves["wavefront 1x4"],
                               curves["wavefront 1x4 (2 per socket)"]):
        if 200 <= n <= 480:
            assert s < 0.65 * w, f"N={n}"


def test_wrong_pinning_below_baseline(curves, benchmark):
    benchmark(lambda: dict(curves["threaded"]))
    for (n, s), (_n, b) in zip(curves["wavefront 1x4 (2 per socket)"],
                               curves["threaded"]):
        if n >= 200:
            assert s < b, f"N={n}"


def test_table2_point_consistent(curves, benchmark):
    """The N=480 points of Fig. 11 match Table II's measurements."""
    benchmark(lambda: dict(curves["wavefront 1x4"]))
    w480 = dict(curves["wavefront 1x4"])[480]
    b480 = dict(curves["threaded"])[480]
    assert w480 == pytest.approx(1331, rel=0.03)
    assert b480 == pytest.approx(1032, rel=0.03)


def test_large_size_decline(curves, benchmark):
    """The wavefront curve declines once the pipeline depth no longer
    fits the shared L3 (the right-hand side of Fig. 11)."""
    benchmark(lambda: dict(curves["wavefront 1x4"]))
    series = dict(curves["wavefront 1x4"])
    assert series[500] < series[300]
