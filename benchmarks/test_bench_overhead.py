"""Benchmark: the lightweight-tooling claim (paper abstract/§II.A).

"Since this mechanism is implemented directly in hardware there is no
overhead involved ... the first option [aggregate counting] is
sufficient in many cases and also practically overhead-free."

The measurable content of that claim: a wrapper-mode measurement costs
a *fixed* number of msr device operations — independent of how long or
how much the wrapped application runs — and the marker API adds a
constant number of register reads per region visit.
"""

import time

import pytest

from repro.core.perfctr import LikwidPerfCtr, MarkerAPI
from repro.hw.arch import create_machine
from repro.hw.events import Channel
from repro.oskern.msr_driver import MsrDriver


def measure_ops(work_slices: int) -> int:
    """MSR operations for a 4-core FLOPS_DP wrapper measurement around
    an application doing *work_slices* units of work."""
    machine = create_machine("nehalem_ep")
    driver = MsrDriver(machine)
    perfctr = LikwidPerfCtr(machine, driver)

    def run():
        for _ in range(work_slices):
            machine.apply_counts(
                {cpu: {Channel.FLOPS_PACKED_DP: 1000.0} for cpu in range(4)})

    driver.stats.reset()
    perfctr.wrap("0-3", "FLOPS_DP", run)
    return driver.stats.operations


def test_wrapper_overhead_independent_of_runtime(benchmark):
    ops = benchmark.pedantic(
        lambda: [measure_ops(n) for n in (1, 100, 10_000)],
        iterations=1, rounds=1)
    # Identical op counts no matter how much the application executes.
    assert ops[0] == ops[1] == ops[2]
    # And the fixed cost is small: a handful of registers per core.
    assert ops[0] < 30 * 4


def test_marker_cost_linear_in_region_visits(benchmark):
    def visits(n):
        machine = create_machine("core2")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        session = perfctr.session([0], "FLOPS_DP")
        session.start()
        marker = MarkerAPI(session)
        marker.likwid_markerInit(1, 1)
        rid = marker.likwid_markerRegisterRegion("R")
        driver.stats.reset()
        for _ in range(n):
            marker.likwid_markerStartRegion(0, 0)
            marker.likwid_markerStopRegion(0, 0, rid)
        return driver.stats.operations

    counts = benchmark.pedantic(lambda: [visits(1), visits(10)],
                                iterations=1, rounds=1)
    per_visit_1 = counts[0]
    per_visit_10 = counts[1] / 10
    assert per_visit_10 == pytest.approx(per_visit_1, rel=0.01)
    # Two snapshots (start+stop) of 4 counters each -> ~10 reads/visit.
    assert per_visit_1 <= 12


def test_retry_plumbing_overhead_below_5pct(benchmark):
    """The resilient I/O layer must not tax the common case: on a
    healthy driver (no FaultPlan) every counter access takes a fast
    path whose only added cost over raw device access is one
    ``fault_plan is None`` check.  Scaled by a measurement's fixed
    operation count, that plumbing must stay under 5% of a full
    no-fault wrapper measurement.
    """
    from repro.core.perfctr.counters import CounterMap, CounterProgrammer
    from repro.hw import registers as regs

    machine = create_machine("nehalem_ep")
    driver = MsrDriver(machine)
    programmer = CounterProgrammer(driver, CounterMap(machine.spec))
    perfctr = LikwidPerfCtr(machine, driver)
    msr = driver.open(0, write=False)

    def run_wrap():
        return perfctr.wrap(
            "0-3", "FLOPS_DP",
            lambda: machine.apply_counts(
                {cpu: {Channel.FLOPS_PACKED_DP: 1000.0}
                 for cpu in range(4)}))

    def timed(fn, repeats):
        # Best of 5 rounds: scheduler noise can only slow a round
        # down, never speed it up.
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            best = min(best, time.perf_counter() - start)
        return best / repeats

    def compare():
        k = 2000
        per_op_direct = timed(lambda: msr.read_msr(regs.IA32_TSC), k)
        per_op_plumbed = timed(
            lambda: programmer._read(msr, regs.IA32_TSC), k)
        driver.stats.reset()
        per_wrap = timed(run_wrap, 20)
        ops_per_wrap = driver.stats.operations / (5 * 20)
        added = max(0.0, per_op_plumbed - per_op_direct) * ops_per_wrap
        return added, per_wrap

    added, per_wrap = benchmark.pedantic(compare, iterations=1, rounds=1)
    assert added <= 0.05 * per_wrap, \
        f"retry plumbing adds {added / per_wrap * 100:.1f}% (>5%) " \
        f"to a no-fault wrapper measurement"
    # And it is invisible in the books: no retries, no backoff sleeps.
    assert programmer.retries == 0
    assert programmer.backoff_seconds == 0.0


def test_uncore_setup_only_on_lock_owners(benchmark):
    """Socket locks also bound the setup cost: uncore registers are
    programmed once per socket, not once per core."""
    def ops_for(cpus):
        machine = create_machine("nehalem_ep")
        driver = MsrDriver(machine)
        perfctr = LikwidPerfCtr(machine, driver)
        driver.stats.reset()
        session = perfctr.session(cpus, "UNC_L3_LINES_IN_ANY:UPMC0")
        session.start()
        session.stop()
        session.read()
        return driver.stats.operations

    two, eight = benchmark.pedantic(
        lambda: (ops_for([0, 4]), ops_for(list(range(8)))),
        iterations=1, rounds=1)
    # 8 cores span the same 2 sockets: uncore cost unchanged, so the
    # total grows only by the per-core (core-counter) share.
    per_core = (eight - two) / 6
    assert per_core < two  # uncore share amortised across the socket
